/**
 * @file
 * Batched-vs-scalar equivalence suite (PR 8 data-oriented hot path).
 *
 * The batched `TlbModel::simulate` phases, the batched write loop in
 * `Process::tick` and the column EMA kernel in the access tracker all
 * claim *bit-identical* results to their scalar counterparts. These
 * tests pin that claim: identical `TlbBatchResult`s, walk-cycle
 * counters, tracker EMAs and full introspection reports across a
 * policy × memory grid, a chaos (fault-rate) run, and the
 * translation-cache toggle. The SIMD dimension is covered by building
 * this same suite twice in CI (normal and -DHAWKSIM_NO_SIMD=ON) and
 * comparing harness reports byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "hawksim.hh"

using namespace hawksim;
using tlb::AccessSample;
using tlb::TlbBatchResult;
using tlb::TlbConfig;
using tlb::TlbModel;

namespace {

/** Restore the process-wide batching switch on scope exit. */
struct BatchingGuard
{
    explicit BatchingGuard(bool on)
        : prev_(TlbModel::batchingEnabled())
    {
        TlbModel::setBatchingEnabled(on);
    }
    ~BatchingGuard() { TlbModel::setBatchingEnabled(prev_); }
    bool prev_;
};

/** Everything one micro-level simulate run can observably produce. */
struct TlbRunResult
{
    std::vector<TlbBatchResult> batches;
    std::uint64_t loadWalkCycles = 0;
    std::uint64_t storeWalkCycles = 0;
    std::uint64_t unhalted = 0;
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbMisses = 0;
    /** Accessed/dirty bit pattern over every leaf, walk order. */
    std::string adBits;

    bool
    operator==(const TlbRunResult &o) const
    {
        if (batches.size() != o.batches.size())
            return false;
        for (std::size_t i = 0; i < batches.size(); i++) {
            if (batches[i].accesses != o.batches[i].accesses ||
                batches[i].misses != o.batches[i].misses ||
                batches[i].walkCycles != o.batches[i].walkCycles)
                return false;
        }
        return loadWalkCycles == o.loadWalkCycles &&
               storeWalkCycles == o.storeWalkCycles &&
               unhalted == o.unhalted &&
               tlbAccesses == o.tlbAccesses &&
               tlbMisses == o.tlbMisses && adBits == o.adBits;
    }
};

/**
 * Map `pages4k` base pages and `regions2m` huge regions above them,
 * then run several simulate batches (mixed reads/writes, varying
 * sequentiality and scale) against a fresh TlbModel.
 */
TlbRunResult
runTlbStream(bool batched, const TlbConfig &cfg,
             std::uint64_t pages4k, std::uint64_t regions2m,
             std::uint64_t seed)
{
    BatchingGuard guard(batched);
    vm::PageTable pt;
    for (Vpn v = 0; v < pages4k; v++)
        pt.mapBase(v, v);
    const Vpn hugeBase = ((pages4k + 511) / 512 + 1) * 512;
    for (std::uint64_t r = 0; r < regions2m; r++)
        pt.mapHuge(hugeBase + (r << 9), r << 9);

    TlbModel model(cfg);
    Rng rng(seed);
    TlbRunResult res;
    const double seqs[] = {0.0, 0.7, 0.3};
    const double scales[] = {1.0, 16.0, 3.5};
    for (int b = 0; b < 3; b++) {
        std::vector<AccessSample> batch;
        batch.reserve(512);
        for (int i = 0; i < 512; i++) {
            AccessSample a;
            const bool huge =
                regions2m != 0 &&
                (pages4k == 0 || rng.chance(0.5));
            if (huge) {
                a.vpn = hugeBase + rng.below(regions2m * 512);
            } else {
                a.vpn = rng.below(pages4k);
            }
            a.write = rng.chance(0.3);
            batch.push_back(a);
        }
        res.batches.push_back(
            model.simulate(pt, batch, seqs[b], scales[b]));
    }
    res.loadWalkCycles = model.counters().dtlbLoadWalkCycles;
    res.storeWalkCycles = model.counters().dtlbStoreWalkCycles;
    res.unhalted = model.counters().cpuClkUnhalted;
    res.tlbAccesses = model.counters().tlbAccesses;
    res.tlbMisses = model.counters().tlbMisses;
    pt.forEachLeaf([&](Vpn, const vm::Pte &e, bool huge) {
        res.adBits += static_cast<char>('0' + (e.accessed() ? 1 : 0) +
                                        (e.dirty() ? 2 : 0) +
                                        (huge ? 4 : 0));
    });
    return res;
}

/** Canonical observable state of a full-system run. */
struct SystemRunResult
{
    std::string metricsCsv;
    std::string snapshotJson;
    std::uint64_t walkCycles = 0;
    std::uint64_t faults = 0;
    std::uint64_t injected = 0;
    std::uint64_t hugeFallbacks = 0;
    std::uint64_t oomKills = 0;

    bool
    operator==(const SystemRunResult &o) const
    {
        return metricsCsv == o.metricsCsv &&
               snapshotJson == o.snapshotJson &&
               walkCycles == o.walkCycles && faults == o.faults &&
               injected == o.injected &&
               hugeFallbacks == o.hugeFallbacks &&
               oomKills == o.oomKills;
    }
};

std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "hawkeye")
        return std::make_unique<core::HawkEyePolicy>();
    if (name == "ingens")
        return std::make_unique<policy::IngensPolicy>();
    if (name == "linux")
        return std::make_unique<policy::LinuxThpPolicy>();
    return std::make_unique<policy::FreeBsdPolicy>();
}

/**
 * One grid point: fragmented memory, a zipfian stream, run to a
 * mid-flight point, then serialize everything an experiment report
 * could contain.
 */
SystemRunResult
runSystem(bool batched, const std::string &policy,
          std::uint64_t memBytes, double faultRate,
          std::uint64_t seed)
{
    BatchingGuard guard(batched);
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = memBytes;
    cfg.seed = seed;
    cfg.fault.rate = faultRate;
    if (faultRate > 0.0) {
        cfg.fault.oomKiller = true;
        cfg.fault.auditEvery = 50;
    }
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy));
    sys.fragmentMemoryMovable(0.6, 16);

    workload::StreamConfig wc;
    wc.footprintBytes = memBytes / 4;
    wc.hotStart = 0.4;
    wc.hotEnd = 1.0;
    wc.hotFraction = 0.8;
    wc.zipfS = 0.5;
    wc.accessesPerSec = 4e6;
    wc.workSeconds = 2.0;
    auto &proc = sys.addProcess(
        "w", std::make_unique<workload::StreamWorkload>("w", wc,
                                                        Rng(seed)));
    sys.run(sec(2)); // mid-flight: EMAs and TLB state still warm

    SystemRunResult r;
    std::ostringstream csv;
    sys.metrics().writeCsv(csv);
    r.metricsCsv = csv.str();
    r.snapshotJson = obs::snapshotToJson(obs::snapshot(sys)).dump();
    r.walkCycles = proc.counters().walkCycles();
    r.faults = proc.pageFaults();
    if (const fault::FaultInjector *fi = sys.faultInjector()) {
        r.injected = fi->totalInjected();
        r.hugeFallbacks = fi->degradation().hugeFallbacks;
        r.oomKills = fi->degradation().oomKills;
    }
    return r;
}

} // namespace

/**
 * Micro level: the two-phase batched simulate must reproduce the
 * scalar loop bit-for-bit — results, all five counters, and the
 * accessed/dirty bits it leaves in the page table — across page-size
 * mixes and both probe geometries (the specialized 4/8-way fused
 * probes and the generic fallback).
 */
TEST(BatchedEquivalence, TlbSimulateBitIdentical)
{
    struct Case
    {
        std::uint64_t pages4k, regions2m;
    };
    const Case cases[] = {{4096, 0}, {0, 16}, {3000, 8}};
    for (const Case &c : cases) {
        const TlbRunResult scalar =
            runTlbStream(false, TlbConfig::haswell(), c.pages4k,
                         c.regions2m, 11);
        const TlbRunResult batched =
            runTlbStream(true, TlbConfig::haswell(), c.pages4k,
                         c.regions2m, 11);
        EXPECT_TRUE(scalar == batched)
            << "4k=" << c.pages4k << " 2m=" << c.regions2m;
    }

    // Odd geometry: 2-way sets take the generic (non-templated)
    // probe path, and 48 sets is not a power of two, so the set
    // mapping takes the division fallback — both in both loops.
    TlbConfig odd;
    odd.l1Entries4k = 96;
    odd.l1Ways4k = 2;
    odd.l2Ways = 16;
    const TlbRunResult scalar = runTlbStream(false, odd, 2048, 4, 7);
    const TlbRunResult batched = runTlbStream(true, odd, 2048, 4, 7);
    EXPECT_TRUE(scalar == batched) << "generic probe geometry";
}

/** Nested (virtualized) walks scale latencies; the scaling must
 *  commute with batching too. */
TEST(BatchedEquivalence, TlbSimulateNestedBitIdentical)
{
    const TlbRunResult scalar = runTlbStream(
        false, TlbConfig::haswellVirtualized(), 2048, 8, 3);
    const TlbRunResult batched = runTlbStream(
        true, TlbConfig::haswellVirtualized(), 2048, 8, 3);
    EXPECT_TRUE(scalar == batched);
}

/**
 * System level: across a policy × memory grid, a batched run and a
 * scalar run must serialize to identical metrics CSVs and identical
 * introspection snapshots (which embed tracker EMAs per region and
 * TLB occupancy), with identical walk-cycle counters.
 */
TEST(BatchedEquivalence, PolicyMemoryGridReportsIdentical)
{
    struct Point
    {
        const char *policy;
        std::uint64_t mem;
    };
    const Point grid[] = {
        {"hawkeye", MiB(128)}, {"hawkeye", MiB(256)},
        {"ingens", MiB(128)},  {"ingens", MiB(256)},
        {"linux", MiB(128)},   {"freebsd", MiB(128)},
    };
    for (const Point &p : grid) {
        const SystemRunResult scalar =
            runSystem(false, p.policy, p.mem, 0.0, 42);
        const SystemRunResult batched =
            runSystem(true, p.policy, p.mem, 0.0, 42);
        EXPECT_TRUE(scalar == batched)
            << p.policy << "/" << p.mem / MiB(1) << "MiB";
    }
}

/**
 * Chaos: with probabilistic fault injection, the OOM killer and
 * periodic invariant audits enabled, the injection schedule, the
 * degradation tallies and the final reports must still be identical
 * — the batched loops may not reorder or add fault-site probes.
 */
TEST(BatchedEquivalence, ChaosFaultRateRunIdentical)
{
    const SystemRunResult scalar =
        runSystem(false, "hawkeye", MiB(96), 0.02, 1234);
    const SystemRunResult batched =
        runSystem(true, "hawkeye", MiB(96), 0.02, 1234);
    EXPECT_TRUE(scalar == batched);
    EXPECT_GT(batched.injected, 0u); // the chaos path actually ran
}

/**
 * The translation-cache toggle is orthogonal: batched and scalar
 * loops must agree with the tcache disabled as well (and under
 * -DHAWKSIM_NO_TCACHE builds, where the toggle compiles away).
 */
TEST(BatchedEquivalence, TcacheOffStillIdentical)
{
#ifndef HAWKSIM_NO_TCACHE
    const bool prev = vm::PageTable::translationCacheEnabled();
    vm::PageTable::setTranslationCacheEnabled(false);
#endif
    const SystemRunResult scalar =
        runSystem(false, "hawkeye", MiB(128), 0.0, 42);
    const SystemRunResult batched =
        runSystem(true, "hawkeye", MiB(128), 0.0, 42);
#ifndef HAWKSIM_NO_TCACHE
    vm::PageTable::setTranslationCacheEnabled(prev);
#endif
    EXPECT_TRUE(scalar == batched);
}

/**
 * The column EMA kernel must be bit-identical to `Ema::update`: for
 * both the seeding and the steady-state case, gathering through
 * alpha()/valueRaw(), applying `a*s + (1-a)*v` and scattering through
 * store() reproduces the member update exactly (same expression
 * shape, so identical rounding).
 */
TEST(BatchedEquivalence, EmaKernelMatchesMemberUpdate)
{
    Rng rng(5);
    for (int i = 0; i < 1000; i++) {
        const double alpha = rng.uniform();
        const double v0 = rng.uniform() * 512.0;
        const double s1 = rng.uniform() * 512.0;
        const double s2 = rng.uniform() * 512.0;

        Ema member(alpha);
        member.update(v0);
        member.update(s1);
        member.update(s2);

        Ema columns(alpha);
        // Seeding case: store() is update()'s post-state.
        columns.store(v0);
        for (const double s : {s1, s2}) {
            const double a = columns.alpha();
            const double v = columns.valueRaw();
            columns.store(a * s + (1.0 - a) * v);
        }
        // Bit equality, not tolerance: memcmp the doubles.
        const double mv = member.value(), cv = columns.value();
        EXPECT_EQ(std::memcmp(&mv, &cv, sizeof(double)), 0)
            << "alpha=" << alpha << " i=" << i;
        EXPECT_EQ(member.seeded(), columns.seeded());
    }
}

/** bucketFor's branchless clamp must keep the exact bucket mapping,
 *  including both edges and the out-of-range guard. */
TEST(BatchedEquivalence, BucketForClampExact)
{
    using core::AccessMap;
    EXPECT_EQ(AccessMap::bucketFor(0.0), 0u);
    EXPECT_EQ(AccessMap::bucketFor(51.1), 0u);
    EXPECT_EQ(AccessMap::bucketFor(51.2), 1u);
    EXPECT_EQ(AccessMap::bucketFor(256.0), 5u);
    EXPECT_EQ(AccessMap::bucketFor(511.9), 9u);
    EXPECT_EQ(AccessMap::bucketFor(512.0), 9u); // clamped top edge
    EXPECT_EQ(AccessMap::bucketFor(10000.0), 9u);
    for (unsigned cov = 0; cov <= 512; cov++) {
        const unsigned ref = std::min(
            static_cast<unsigned>(cov / (512.0 / 10)), 9u);
        EXPECT_EQ(AccessMap::bucketFor(cov), ref) << cov;
    }
}
