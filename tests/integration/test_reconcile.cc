/**
 * @file
 * Three-way reconciliation: introspection snapshots, the invariant
 * auditor's frame/refcount walk and the Metrics time series must all
 * describe the same machine — across policies, with swap pressure,
 * and under fault-injection chaos.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <tuple>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "linux")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "ingens")
        return std::make_unique<policy::IngensPolicy>();
    return std::make_unique<core::HawkEyePolicy>();
}

/** The vmstat.* series sample recorded at @p t, or -1. */
double
seriesValueAt(const sim::Metrics &m, const std::string &name,
              TimeNs t)
{
    if (!m.has(name))
        return -1.0;
    for (const auto &p : m.series(name).points()) {
        if (p.time == t)
            return p.value;
    }
    return -1.0;
}

/** Internal consistency of one snapshot (buddy tiling, RSS sums). */
void
checkSnapshotCoherent(const obs::Snapshot &s)
{
    EXPECT_EQ(s.mem.freeFrames + s.mem.usedFrames, s.mem.totalFrames);
    EXPECT_EQ(s.mem.freeZeroPages + s.mem.freeNonZeroPages,
              s.mem.freeFrames);
    std::uint64_t tiles = 0;
    for (unsigned o = 0; o < obs::kInspectOrders; o++)
        tiles += s.buddy[o].freeBlocks << o;
    EXPECT_EQ(tiles, s.mem.freeFrames);
    std::uint64_t swapped = 0;
    for (const obs::ProcInfo &pi : s.procs) {
        swapped += pi.swappedPages;
        std::uint64_t vma_pop = 0, region_pop = 0;
        for (const obs::VmaInfo &vi : pi.vmas)
            vma_pop += vi.mappedPages;
        for (const obs::RegionInfo &ri : pi.regions)
            region_pop += ri.population;
        EXPECT_EQ(vma_pop, pi.mappedPages) << "pid " << pi.pid;
        EXPECT_EQ(region_pop, pi.mappedPages) << "pid " << pi.pid;
    }
    EXPECT_EQ(swapped, s.mem.swappedPages);
}

/** Snapshot counters vs the vmstat.* Metrics samples at one tick. */
void
checkSnapshotMatchesMetrics(const obs::Snapshot &s,
                            const sim::Metrics &m)
{
    EXPECT_EQ(seriesValueAt(m, "vmstat.free_zero_pages", s.time),
              static_cast<double>(s.mem.freeZeroPages));
    EXPECT_EQ(seriesValueAt(m, "vmstat.swap_used_pages", s.time),
              static_cast<double>(s.mem.swapUsedPages));
    for (unsigned o = 0; o < obs::kInspectOrders; o++) {
        char name[40];
        std::snprintf(name, sizeof(name), "vmstat.free_blocks_o%02u",
                      o);
        EXPECT_EQ(seriesValueAt(m, name, s.time),
                  static_cast<double>(s.buddy[o].freeBlocks))
            << name << " at t=" << s.time;
    }
}

} // namespace

class Reconcile
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(Reconcile, SnapshotAuditorAndMetricsAgree)
{
    setLogQuiet(true);
    const auto [policy_name, mem_mib] = GetParam();
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(static_cast<std::uint64_t>(mem_mib));
    cfg.seed = 17;
    cfg.inspect.everyTicks = 20;
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy_name));
    sys.enableSwap(true);

    workload::StreamConfig wc;
    wc.footprintBytes = MiB(24);
    wc.workSeconds = 1.0;
    sys.addProcess("stream",
                   std::make_unique<workload::StreamWorkload>(
                       "stream", wc, Rng(2)));
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(16);
    lc.iterations = 2;
    sys.addProcess("touch",
                   std::make_unique<workload::LinearTouchWorkload>(
                       "touch", lc, Rng(3)));
    sys.runUntilAllDone(sec(60));

    // The auditor cross-checks a fresh snapshot against its own
    // frame-table and refcount walk (snapshot-drift class).
    const fault::AuditReport rep = sys.auditNow();
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << (rep.violations.empty()
                                  ? ""
                                  : rep.violations[0].detail);
    EXPECT_FALSE(rep.has(fault::ViolationClass::kSnapshotDrift));

    // Every periodic snapshot reconciles internally and against the
    // vmstat.* series recorded at the same instant.
    ASSERT_NE(sys.vmstat(), nullptr);
    const auto &snaps = sys.vmstat()->snapshots();
    ASSERT_GT(snaps.size(), 2u);
    for (const obs::Snapshot &s : snaps) {
        checkSnapshotCoherent(s);
        checkSnapshotMatchesMetrics(s, sys.metrics());
    }

    // And a live snapshot agrees with the physical-memory counters.
    const obs::Snapshot live = obs::snapshot(sys);
    EXPECT_EQ(live.mem.freeFrames, sys.phys().freeFrames());
    EXPECT_EQ(live.mem.swappedPages, sys.swappedPages());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Reconcile,
    ::testing::Combine(::testing::Values("linux", "ingens",
                                         "hawkeye"),
                       ::testing::Values(64, 128)));

TEST(Reconcile, HoldsUnderFaultInjectionChaos)
{
    setLogQuiet(true);
    for (const std::uint64_t seed : {5u, 11u}) {
        sim::SystemConfig cfg;
        cfg.memoryBytes = MiB(96);
        cfg.seed = seed;
        cfg.inspect.everyTicks = 25;
        cfg.fault.rate = 0.02;
        cfg.fault.auditEvery = 200;
        sim::System sys(cfg);
        sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
        sys.enableSwap(true);

        workload::StreamConfig wc;
        wc.footprintBytes = MiB(48);
        wc.workSeconds = 1.0;
        sys.addProcess("stream",
                       std::make_unique<workload::StreamWorkload>(
                           "stream", wc, Rng(seed)));
        sys.runUntilAllDone(sec(60));

        // Injected allocation failures degrade service, never
        // bookkeeping: the snapshot still reconciles exactly.
        ASSERT_NE(sys.faultInjector(), nullptr);
        EXPECT_GT(sys.auditsRun(), 0u);
        const fault::AuditReport rep = sys.auditNow();
        EXPECT_TRUE(rep.ok())
            << (rep.violations.empty() ? ""
                                       : rep.violations[0].detail);
        for (const obs::Snapshot &s : sys.vmstat()->snapshots()) {
            checkSnapshotCoherent(s);
            checkSnapshotMatchesMetrics(s, sys.metrics());
        }
    }
}
