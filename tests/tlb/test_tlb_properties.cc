/**
 * @file
 * TLB model property tests: monotonicity and invariance properties
 * that must hold across footprints and access patterns.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "tlb/tlb.hh"
#include "vm/page_table.hh"

using namespace hawksim;
using tlb::AccessSample;
using tlb::TlbModel;

namespace {

struct Tables
{
    vm::PageTable pt4k;
    vm::PageTable pt2m;

    explicit Tables(std::uint64_t pages)
    {
        for (Vpn v = 0; v < pages; v++)
            pt4k.mapBase(v, v);
        for (std::uint64_t r = 0; r * 512 < pages; r++)
            pt2m.mapHuge(r << 9, r << 9);
    }
};

std::vector<AccessSample>
uniformBatch(std::uint64_t pages, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AccessSample> batch;
    batch.reserve(n);
    for (int i = 0; i < n; i++)
        batch.push_back({rng.below(pages), rng.chance(0.3)});
    return batch;
}

} // namespace

class TlbFootprint : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TlbFootprint, HugeNeverWorseThanBase)
{
    const std::uint64_t pages = GetParam();
    Tables s(pages);
    TlbModel m4k, m2m;
    const auto batch = uniformBatch(pages, 20000, 11);
    const auto r4k = m4k.simulate(s.pt4k, batch, 0.0);
    const auto r2m = m2m.simulate(s.pt2m, batch, 0.0);
    EXPECT_LE(r2m.misses, r4k.misses + r4k.misses / 10);
    EXPECT_LE(r2m.walkCycles, r4k.walkCycles);
}

TEST_P(TlbFootprint, WalkCyclesScaleWithMisses)
{
    const std::uint64_t pages = GetParam();
    Tables s(pages);
    TlbModel m;
    const auto r =
        m.simulate(s.pt4k, uniformBatch(pages, 20000, 13), 0.0);
    if (r.misses == 0) {
        EXPECT_LT(r.walkCycles, 20000u * 8);
        return;
    }
    const double per_miss = static_cast<double>(r.walkCycles) /
                            static_cast<double>(r.misses);
    EXPECT_GT(per_miss, 4.0);   // at least an L2-hit's worth
    EXPECT_LT(per_miss, 600.0); // bounded by a full memory walk
}

INSTANTIATE_TEST_SUITE_P(Footprints, TlbFootprint,
                         ::testing::Values(64, 4096, 1 << 15,
                                           1 << 18, 1 << 20));

TEST(TlbProperties, MissRateMonotonicInFootprint)
{
    double prev = -1.0;
    for (std::uint64_t pages : {64ull, 1ull << 12, 1ull << 16,
                                1ull << 19}) {
        Tables s(pages);
        TlbModel m;
        m.simulate(s.pt4k, uniformBatch(pages, 8000, 17), 0.0);
        const auto r =
            m.simulate(s.pt4k, uniformBatch(pages, 8000, 18), 0.0);
        const double rate = static_cast<double>(r.misses) /
                            static_cast<double>(r.accesses);
        EXPECT_GE(rate, prev - 0.02)
            << "miss rate should not fall as footprint grows";
        prev = rate;
    }
}

TEST(TlbProperties, SequentialityOnlyDiscountsLatency)
{
    // Declared sequentiality must not change hit/miss accounting,
    // only the charged walk cycles.
    Tables s(1 << 18);
    const auto batch = uniformBatch(1 << 18, 10000, 19);
    TlbModel a, b;
    const auto ra = a.simulate(s.pt4k, batch, 0.0);
    const auto rb = b.simulate(s.pt4k, batch, 1.0);
    EXPECT_EQ(ra.misses, rb.misses);
    EXPECT_GT(ra.walkCycles, rb.walkCycles * 3);
}

TEST(TlbProperties, DeterministicAcrossRuns)
{
    Tables s(1 << 16);
    TlbModel a, b;
    const auto batch = uniformBatch(1 << 16, 5000, 23);
    const auto ra = a.simulate(s.pt4k, batch, 0.2);
    const auto rb = b.simulate(s.pt4k, batch, 0.2);
    EXPECT_EQ(ra.misses, rb.misses);
    EXPECT_EQ(ra.walkCycles, rb.walkCycles);
}

TEST(TlbProperties, CountersAccumulateAcrossBatches)
{
    Tables s(1 << 16);
    TlbModel m;
    const auto b1 = uniformBatch(1 << 16, 3000, 29);
    const auto b2 = uniformBatch(1 << 16, 3000, 31);
    const auto r1 = m.simulate(s.pt4k, b1, 0.0);
    const tlb::PerfCounters snap = m.counters();
    const auto r2 = m.simulate(s.pt4k, b2, 0.0);
    EXPECT_EQ(m.counters().tlbMisses, r1.misses + r2.misses);
    EXPECT_EQ(m.counters().since(snap).tlbMisses, r2.misses);
}
