/**
 * @file
 * TLB hierarchy and page-walk model tests: the hardware behaviours
 * the paper's argument rests on (huge pages cut misses and walk
 * latency, sequential streams hide walk latency, nested translation
 * amplifies it).
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "tlb/tlb.hh"
#include "vm/page_table.hh"

using namespace hawksim;
using tlb::AccessSample;
using tlb::SetAssocTlb;
using tlb::TlbConfig;
using tlb::TlbModel;

TEST(SetAssocTlb, HitAfterInsert)
{
    SetAssocTlb t(64, 4);
    EXPECT_FALSE(t.lookup(42));
    t.insert(42);
    EXPECT_TRUE(t.lookup(42));
    t.flush();
    EXPECT_FALSE(t.lookup(42));
}

TEST(SetAssocTlb, LruEvictsOldest)
{
    SetAssocTlb t(4, 4); // one set, 4 ways
    for (std::uint64_t k = 0; k < 4; k++)
        t.insert(k);
    t.lookup(0); // refresh 0
    t.insert(99); // evicts key 1 (oldest untouched)
    EXPECT_TRUE(t.lookup(0));
    EXPECT_TRUE(t.lookup(99));
    int present = 0;
    for (std::uint64_t k = 1; k < 4; k++)
        present += t.lookup(k) ? 1 : 0;
    EXPECT_EQ(present, 2);
}

TEST(SetAssocTlb, CapacityBoundsResidency)
{
    SetAssocTlb t(64, 4);
    for (std::uint64_t k = 0; k < 1000; k++)
        t.insert(k);
    int hits = 0;
    for (std::uint64_t k = 0; k < 1000; k++)
        hits += t.lookup(k) ? 1 : 0;
    EXPECT_LE(hits, 64 + 64); // at most capacity (plus re-inserts)
}

namespace {

/** Map n base pages (or n/512 huge regions) and return the table. */
void
mapRange(vm::PageTable &pt, std::uint64_t pages, bool huge)
{
    if (huge) {
        for (std::uint64_t r = 0; r * 512 < pages; r++)
            pt.mapHuge(r << 9, r << 9);
    } else {
        for (Vpn v = 0; v < pages; v++)
            pt.mapBase(v, v);
    }
}

/** Simulate n uniform random accesses over the mapped range. */
tlb::TlbBatchResult
randomAccesses(TlbModel &model, vm::PageTable &pt,
               std::uint64_t pages, int n, double seq = 0.0,
               std::uint64_t seed = 9)
{
    Rng rng(seed);
    std::vector<AccessSample> batch;
    batch.reserve(n);
    for (int i = 0; i < n; i++)
        batch.push_back({rng.below(pages), false});
    return model.simulate(pt, batch, seq);
}

} // namespace

TEST(TlbModel, HugePagesCutMissesForLargeFootprints)
{
    vm::PageTable pt4k, pt2m;
    constexpr std::uint64_t kPages = 512 * 1024; // 2GB footprint
    mapRange(pt4k, kPages, false);
    mapRange(pt2m, kPages, true);
    TlbModel m4k, m2m;
    auto r4k = randomAccesses(m4k, pt4k, kPages, 20000);
    auto r2m = randomAccesses(m2m, pt2m, kPages, 20000);
    EXPECT_GT(r4k.misses, r2m.misses * 2);
    EXPECT_GT(r4k.walkCycles, r2m.walkCycles * 5);
}

TEST(TlbModel, SmallFootprintFitsInTlb)
{
    vm::PageTable pt;
    mapRange(pt, 32, false); // 32 pages fit in the 64-entry L1
    TlbModel m;
    randomAccesses(m, pt, 32, 2000); // warm
    auto r = randomAccesses(m, pt, 32, 2000);
    EXPECT_LT(static_cast<double>(r.misses) / r.accesses, 0.01);
}

TEST(TlbModel, SequentialOverlapHidesWalkLatency)
{
    // Same access pattern; only the declared sequentiality differs.
    auto run = [](double seq) {
        vm::PageTable pt;
        mapRange(pt, 1 << 18, false);
        TlbModel m;
        std::vector<AccessSample> batch;
        for (Vpn v = 0; v < (1 << 15); v++)
            batch.push_back({v * 8 % (1 << 18), false});
        return m.simulate(pt, batch, seq).walkCycles;
    };
    EXPECT_LT(run(1.0), run(0.0) / 3);
}

TEST(TlbModel, NestedTranslationAmplifiesWalks)
{
    auto run = [](bool nested) {
        vm::PageTable pt;
        mapRange(pt, 1 << 18, false);
        TlbConfig cfg = nested ? TlbConfig::haswellVirtualized()
                               : TlbConfig::haswell();
        TlbModel m(cfg);
        return randomAccesses(m, pt, 1 << 18, 20000).walkCycles;
    };
    const Cycles native = run(false);
    const Cycles virt = run(true);
    EXPECT_GT(virt, native * 2);
    EXPECT_LT(virt, native * 5);
}

TEST(TlbModel, CountersImplementTable4Formula)
{
    vm::PageTable pt;
    mapRange(pt, 1 << 16, false);
    TlbModel m;
    Rng rng(3);
    std::vector<AccessSample> batch;
    for (int i = 0; i < 5000; i++)
        batch.push_back({rng.below(1 << 16), i % 3 == 0});
    m.simulate(pt, batch, 0.0);
    m.counters().cpuClkUnhalted = m.counters().walkCycles() * 4;
    EXPECT_NEAR(m.counters().mmuOverheadPct(), 25.0, 0.01);
    EXPECT_GT(m.counters().dtlbLoadWalkCycles, 0u);
    EXPECT_GT(m.counters().dtlbStoreWalkCycles, 0u);
}

TEST(TlbModel, SimulateSetsAccessedBits)
{
    vm::PageTable pt;
    mapRange(pt, 1024, false);
    TlbModel m;
    std::vector<AccessSample> batch = {{5, false}, {700, true}};
    m.simulate(pt, batch, 0.0);
    EXPECT_TRUE(pt.lookup(5).entry.accessed());
    EXPECT_TRUE(pt.lookup(700).entry.dirty());
    EXPECT_FALSE(pt.lookup(6).entry.accessed());
}

TEST(TlbModel, ScalingExtrapolatesCounts)
{
    vm::PageTable pt;
    mapRange(pt, 1 << 16, false);
    TlbModel m;
    auto r = randomAccesses(m, pt, 1 << 16, 1000);
    vm::PageTable pt2;
    mapRange(pt2, 1 << 16, false);
    TlbModel m2;
    Rng rng(9);
    std::vector<AccessSample> batch;
    for (int i = 0; i < 1000; i++)
        batch.push_back({rng.below(1 << 16), false});
    auto r10 = m2.simulate(pt2, batch, 0.0, 10.0);
    EXPECT_EQ(r10.accesses, r.accesses * 10);
    EXPECT_NEAR(static_cast<double>(r10.misses),
                static_cast<double>(r.misses) * 10.0,
                static_cast<double>(r.misses));
}

TEST(TlbModel, WalkCyclesMatchCounterDeltasExactly)
{
    // Regression: walkCycles used to round the load+store sum while
    // the counters rounded load and store separately, so the batch
    // result could drift +/-1 cycle from the counter deltas at
    // fractional scales. Both must come from the same split rounding.
    vm::PageTable pt;
    mapRange(pt, 1 << 16, false);
    TlbModel m;
    Rng rng(11);
    for (int batch_no = 0; batch_no < 50; batch_no++) {
        std::vector<AccessSample> batch;
        for (int i = 0; i < 500; i++)
            batch.push_back({rng.below(1 << 16), i % 3 == 0});
        const std::uint64_t before =
            m.counters().dtlbLoadWalkCycles +
            m.counters().dtlbStoreWalkCycles;
        // Odd fractional scales make llround differences visible.
        const double scale = 1.0 + 0.137 * batch_no;
        auto r = m.simulate(pt, batch, 0.3, scale);
        const std::uint64_t after =
            m.counters().dtlbLoadWalkCycles +
            m.counters().dtlbStoreWalkCycles;
        ASSERT_EQ(r.walkCycles, after - before)
            << "batch " << batch_no << " scale " << scale;
    }
}

TEST(TlbModel, FlushDropsTranslations)
{
    vm::PageTable pt;
    mapRange(pt, 64, false);
    TlbModel m;
    randomAccesses(m, pt, 64, 1000);
    const std::uint64_t misses_before = m.counters().tlbMisses;
    m.flush();
    randomAccesses(m, pt, 64, 64);
    EXPECT_GT(m.counters().tlbMisses, misses_before);
}
