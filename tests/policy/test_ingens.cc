/**
 * @file
 * Ingens policy tests: base-pages-only fault path, FMFI-adaptive
 * utilization threshold, recent-fault prioritization, and the
 * proportional fairness metric.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct IngensFixture
{
    explicit IngensFixture(policy::IngensConfig cfg = {},
                           std::uint64_t mem = MiB(256))
    {
        setLogQuiet(true);
        sim::SystemConfig scfg;
        scfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(scfg);
        auto pol = std::make_unique<policy::IngensPolicy>(cfg);
        policy = pol.get();
        sys->setPolicy(std::move(pol));
    }

    sim::Process &
    addIdle(const std::string &name, std::uint64_t bytes)
    {
        workload::StreamConfig wc;
        wc.footprintBytes = bytes;
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        return sys->addProcess(
            name, std::make_unique<workload::StreamWorkload>(
                      name, wc, Rng(1)));
    }

    std::unique_ptr<sim::System> sys;
    policy::IngensPolicy *policy = nullptr;
};

Addr
workloadBase(sim::Process &p)
{
    return static_cast<workload::StreamWorkload *>(&p.workload())
        ->baseAddr();
}

} // namespace

TEST(IngensPolicy, FaultPathIsAlwaysBasePages)
{
    IngensFixture f;
    auto &proc = f.addIdle("a", MiB(16));
    auto out = f.policy->onFault(*f.sys, proc,
                                 addrToVpn(workloadBase(proc)));
    EXPECT_FALSE(out.huge);
    EXPECT_EQ(out.pagesMapped, 1u);
    // Low latency: no 2MB zeroing in the fault path.
    EXPECT_LT(out.latency, usec(10));
}

TEST(IngensPolicy, AggressivePromotionWhenUnfragmented)
{
    IngensFixture f;
    ASSERT_FALSE(f.policy->conservative(*f.sys));
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn base = addrToVpn(workloadBase(proc));
    f.policy->onFault(*f.sys, proc, base); // one page only
    f.sys->run(sec(1));
    // FMFI ~ 0 -> aggressive: promotes even at 1/512 utilization.
    EXPECT_TRUE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
}

TEST(IngensPolicy, ConservativeUnderFragmentation)
{
    IngensFixture f;
    f.sys->fragmentMemory(0.97);
    ASSERT_TRUE(f.policy->conservative(*f.sys));
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn base = addrToVpn(workloadBase(proc));
    // 50% utilized: below the 90% threshold -> no promotion.
    for (unsigned i = 0; i < 256; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    f.sys->run(sec(1));
    EXPECT_FALSE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
    // 92% utilized: above threshold -> promoted (via compaction).
    for (unsigned i = 256; i < 472; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    f.sys->run(sec(2));
    EXPECT_TRUE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
}

TEST(IngensPolicy, AlwaysConservativeConfig)
{
    policy::IngensConfig cfg;
    cfg.alwaysConservative = true;
    IngensFixture f(cfg);
    EXPECT_TRUE(f.policy->conservative(*f.sys));
    EXPECT_EQ(f.policy->name(), "Ingens-90%");
}

TEST(IngensPolicy, FiftyPercentVariantPromotesAtHalf)
{
    policy::IngensConfig cfg;
    cfg.utilThreshold = 0.50;
    cfg.alwaysConservative = true;
    IngensFixture f(cfg);
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn base = addrToVpn(workloadBase(proc));
    for (unsigned i = 0; i < 260; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    f.sys->run(sec(1));
    EXPECT_TRUE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
}

TEST(IngensPolicy, RecentlyFaultedRegionsPromoteFirst)
{
    IngensFixture f;
    auto &proc = f.addIdle("a", MiB(64));
    const Vpn base = addrToVpn(workloadBase(proc));
    // Fault region 5 first, then region 2: FIFO order wins over VA
    // order for recent faults.
    f.policy->onFault(*f.sys, proc, base + 5 * 512);
    f.policy->onFault(*f.sys, proc, base + 2 * 512);
    f.sys->costs().promotionsPerSec = 5.0;
    f.sys->run(msec(300)); // budget for exactly one promotion
    const auto &pt = proc.space().pageTable();
    EXPECT_TRUE(pt.isHuge(vpnToHugeRegion(base) + 5));
    EXPECT_FALSE(pt.isHuge(vpnToHugeRegion(base) + 2));
}

TEST(IngensPolicy, ProportionalShareAcrossProcesses)
{
    IngensFixture f({}, MiB(512));
    auto &p1 = f.addIdle("a", MiB(64));
    auto &p2 = f.addIdle("b", MiB(64));
    const Vpn b1 = addrToVpn(workloadBase(p1));
    const Vpn b2 = addrToVpn(workloadBase(p2));
    for (unsigned r = 0; r < 32; r++) {
        f.policy->onFault(*f.sys, p1, b1 + r * 512);
        f.policy->onFault(*f.sys, p2, b2 + r * 512);
    }
    f.sys->run(sec(1)); // ~20 promotions across 64 candidates
    const auto h1 = p1.space().pageTable().mappedHugePages();
    const auto h2 = p2.space().pageTable().mappedHugePages();
    // Unlike Linux FCFS, promotion interleaves: both make progress.
    EXPECT_GT(h1, 0u);
    EXPECT_GT(h2, 0u);
    EXPECT_LE(h1 > h2 ? h1 - h2 : h2 - h1, 2u);
}
