/**
 * @file
 * FreeBSD reservation policy tests: reserve-then-fill, in-place
 * promotion only at full population, reservation breaking under
 * pressure and on madvise.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct BsdFixture
{
    explicit BsdFixture(std::uint64_t mem = MiB(64))
    {
        setLogQuiet(true);
        sim::SystemConfig scfg;
        scfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(scfg);
        auto pol = std::make_unique<policy::FreeBsdPolicy>();
        policy = pol.get();
        sys->setPolicy(std::move(pol));
    }

    sim::Process &
    addIdle(const std::string &name, std::uint64_t bytes)
    {
        workload::StreamConfig wc;
        wc.footprintBytes = bytes;
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        return sys->addProcess(
            name, std::make_unique<workload::StreamWorkload>(
                      name, wc, Rng(1)));
    }

    std::unique_ptr<sim::System> sys;
    policy::FreeBsdPolicy *policy = nullptr;
};

Addr
workloadBase(sim::Process &p)
{
    return static_cast<workload::StreamWorkload *>(&p.workload())
        ->baseAddr();
}

} // namespace

TEST(FreeBsdPolicy, FirstFaultReservesButMapsOneBasePage)
{
    BsdFixture f;
    auto &proc = f.addIdle("a", MiB(8));
    const Vpn vpn = addrToVpn(workloadBase(proc)) + 77;
    auto out = f.policy->onFault(*f.sys, proc, vpn);
    EXPECT_FALSE(out.huge);
    EXPECT_EQ(out.pagesMapped, 1u);
    EXPECT_EQ(proc.space().rssPages(), 1u);
    EXPECT_EQ(f.policy->activeReservations(), 1u);
    // The whole 2MB block is taken from the allocator though.
    EXPECT_GE(f.sys->phys().usedFrames(), kPagesPerHuge);
}

TEST(FreeBsdPolicy, FillsNaturalSlotsContiguously)
{
    BsdFixture f;
    auto &proc = f.addIdle("a", MiB(8));
    const Vpn base = addrToVpn(workloadBase(proc));
    f.policy->onFault(*f.sys, proc, base + 3);
    f.policy->onFault(*f.sys, proc, base + 4);
    const auto &pt = proc.space().pageTable();
    EXPECT_EQ(pt.lookup(base + 4).pfn, pt.lookup(base + 3).pfn + 1);
}

TEST(FreeBsdPolicy, PromotesInPlaceOnlyWhenFull)
{
    BsdFixture f;
    auto &proc = f.addIdle("a", MiB(8));
    const Vpn base = addrToVpn(workloadBase(proc));
    for (unsigned i = 0; i < 511; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    EXPECT_FALSE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
    EXPECT_EQ(f.policy->promotions(), 0u);
    auto out = f.policy->onFault(*f.sys, proc, base + 511);
    EXPECT_TRUE(out.huge); // the 512th fault completes + promotes
    EXPECT_TRUE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
    EXPECT_EQ(f.policy->promotions(), 1u);
    EXPECT_EQ(f.policy->activeReservations(), 0u);
}

TEST(FreeBsdPolicy, NoReservationUnderFragmentation)
{
    BsdFixture f;
    f.sys->fragmentMemory(1.0);
    auto &proc = f.addIdle("a", MiB(8));
    auto out = f.policy->onFault(*f.sys, proc,
                                 addrToVpn(workloadBase(proc)));
    EXPECT_FALSE(out.oom);
    EXPECT_EQ(f.policy->activeReservations(), 0u);
    EXPECT_EQ(proc.space().rssPages(), 1u);
}

TEST(FreeBsdPolicy, MadviseBreaksOverlappingReservation)
{
    BsdFixture f;
    auto &proc = f.addIdle("a", MiB(8));
    const Addr base = workloadBase(proc);
    f.policy->onFault(*f.sys, proc, addrToVpn(base));
    const std::uint64_t used = f.sys->phys().usedFrames();
    ASSERT_GE(used, kPagesPerHuge);
    proc.space().madviseDontneed(base, kPageSize);
    f.policy->onMadviseFree(*f.sys, proc, base, kPageSize);
    EXPECT_EQ(f.policy->activeReservations(), 0u);
    EXPECT_EQ(f.policy->reservationsBroken(), 1u);
    // All 512 frames are back with the allocator.
    EXPECT_EQ(f.sys->phys().usedFrames(), used - kPagesPerHuge);
}

TEST(FreeBsdPolicy, MemoryPressureBreaksPartialReservations)
{
    BsdFixture f(MiB(8)); // tiny system: 4 huge regions minus zero pg
    auto &proc = f.addIdle("a", MiB(8));
    const Vpn base = addrToVpn(workloadBase(proc));
    // Reserve all available 2MB blocks with one fault each.
    for (unsigned r = 0; r < 3; r++)
        f.policy->onFault(*f.sys, proc, base + r * 512);
    ASSERT_GE(f.policy->activeReservations(), 2u);
    // Memory now looks exhausted; base faults must reclaim the
    // reservation tails instead of OOM-ing.
    std::uint64_t mapped = 0;
    for (unsigned i = 0; i < 600; i++) {
        auto out =
            f.policy->onFault(*f.sys, proc, base + 3 * 512 + i);
        if (out.oom)
            break;
        mapped++;
    }
    EXPECT_GT(mapped, 500u);
    EXPECT_GT(f.policy->reservationsBroken(), 0u);
}

TEST(FreeBsdPolicy, ExitReleasesReservations)
{
    BsdFixture f;
    {
        auto &proc = f.addIdle("a", MiB(8));
        f.policy->onFault(*f.sys, proc,
                          addrToVpn(workloadBase(proc)));
        ASSERT_EQ(f.policy->activeReservations(), 1u);
        f.policy->onProcessExit(*f.sys, proc);
    }
    EXPECT_EQ(f.policy->activeReservations(), 0u);
}
