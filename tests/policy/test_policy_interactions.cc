/**
 * @file
 * Cross-component interaction tests: the paper's §2/§3 claims that
 * involve two mechanisms at once.
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

sim::SystemConfig
cfg(std::uint64_t mem, std::uint64_t seed = 5)
{
    sim::SystemConfig c;
    c.memoryBytes = mem;
    c.seed = seed;
    return c;
}

} // namespace

/** §2.1: khugepaged re-promotes madvise-freed regions into bloat. */
TEST(Interactions, LinuxRepromotionRecreatesBloat)
{
    setLogQuiet(true);
    sim::System sys(cfg(MiB(256)));
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    workload::KvConfig kc;
    kc.arenaBytes = MiB(256);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 20000; // ~80MB
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.9;
    workload::KvPhase hold;
    hold.type = workload::KvPhase::Type::kPause;
    hold.durationSec = 1e9;
    kc.phases = {ins, del, hold};
    auto &proc = sys.addProcess(
        "kv", std::make_unique<workload::KeyValueStoreWorkload>(
                  "kv", kc, sys.rng().fork()));
    auto *kv = static_cast<workload::KeyValueStoreWorkload *>(
        &proc.workload());
    sys.run(sec(125)); // khugepaged re-promotes sparse regions
    // 90% of values are dead, yet RSS sits far above the live set:
    // every surviving region was re-inflated to a full huge page.
    EXPECT_GT(proc.space().rssPages(), kv->liveValues() * 5)
        << "max_ptes_none=511 should re-inflate freed regions";
}

/** §3.2: HawkEye's recovery undoes exactly that bloat. */
TEST(Interactions, HawkEyeRecoversRepromotionBloat)
{
    setLogQuiet(true);
    sim::System sys(cfg(MiB(256)));
    auto pol = std::make_unique<core::HawkEyePolicy>();
    auto *hawkeye = pol.get();
    sys.setPolicy(std::move(pol));
    workload::KvConfig kc;
    kc.arenaBytes = MiB(512);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 60000; // ~235MB of the 256MB machine
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.9;
    workload::KvPhase serve;
    serve.type = workload::KvPhase::Type::kServe;
    serve.durationSec = 1e9;
    serve.opsPerSec = 5000;
    kc.phases = {ins, del, serve};
    sys.addProcess("kv",
                   std::make_unique<workload::KeyValueStoreWorkload>(
                       "kv", kc, sys.rng().fork()));
    sys.run(sec(200));
    // Re-promotion happens (aggressive policy), but recovery keeps
    // the system out of sustained pressure.
    EXPECT_LT(sys.phys().usedFraction(), 0.90);
    EXPECT_GT(hawkeye->bloatRecovery().stats().pagesDeduped, 0u);
}

/** §2.2: Ingens' async promotion does not reduce fault counts. */
TEST(Interactions, IngensKeepsBasePageFaultCount)
{
    setLogQuiet(true);
    auto faults = [](const char *which) {
        sim::System sys(cfg(MiB(512)));
        if (std::string(which) == "ingens")
            sys.setPolicy(std::make_unique<policy::IngensPolicy>());
        else
            sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
        workload::LinearTouchConfig lc;
        lc.bytes = MiB(128);
        auto &proc = sys.addProcess(
            "t", std::make_unique<workload::LinearTouchWorkload>(
                     "t", lc, Rng(1)));
        sys.runUntilAllDone(sec(300));
        return proc.pageFaults();
    };
    EXPECT_EQ(faults("ingens"), MiB(128) / kPageSize);
    EXPECT_EQ(faults("linux"), MiB(128) / kHugePageSize);
}

/** §3.1: the zero daemon keeps huge faults cheap under churn. */
TEST(Interactions, PrezeroKeepsFaultsCheapUnderChurn)
{
    setLogQuiet(true);
    sim::SystemConfig c = cfg(GiB(1));
    c.bootMemoryZeroed = false;
    sim::System sys(c);
    sys.costs().zeroDaemonPagesPerSec = 1e6;
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    workload::LinearTouchConfig lc;
    lc.bytes = MiB(256);
    lc.iterations = 6; // alloc/free cycles dirty freed memory
    auto &proc = sys.addProcess(
        "t", std::make_unique<workload::LinearTouchWorkload>(
                 "t", lc, Rng(1)));
    sys.runUntilAllDone(sec(600));
    const double avg_fault_us =
        static_cast<double>(proc.faultTime()) / 1e3 /
        static_cast<double>(proc.pageFaults());
    // Mostly pre-zeroed huge faults (13us), far from sync 465us.
    EXPECT_LT(avg_fault_us, 160.0);
}

/** Fairness: FreeBSD's reservations never create bloat. */
TEST(Interactions, FreeBsdNeverBloats)
{
    setLogQuiet(true);
    sim::System sys(cfg(MiB(256)));
    sys.setPolicy(std::make_unique<policy::FreeBsdPolicy>());
    workload::KvConfig kc;
    kc.arenaBytes = MiB(256);
    workload::KvPhase ins;
    ins.type = workload::KvPhase::Type::kInsert;
    ins.count = 20000;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.9;
    workload::KvPhase hold;
    hold.type = workload::KvPhase::Type::kPause;
    hold.durationSec = 1e9;
    kc.phases = {ins, del, hold};
    auto &proc = sys.addProcess(
        "kv", std::make_unique<workload::KeyValueStoreWorkload>(
                  "kv", kc, sys.rng().fork()));
    sys.run(sec(5));
    const std::uint64_t after_delete = proc.space().rssPages();
    sys.run(sec(120));
    // No khugepaged: RSS stays at the live dataset.
    EXPECT_LE(proc.space().rssPages(), after_delete + 512);
}
