/**
 * @file
 * Linux THP policy tests: synchronous huge faults, sync zeroing
 * latency (Table 1's 465us), khugepaged FCFS + low-to-high VA order,
 * and max_ptes_none-driven re-promotion (the Fig. 1 bloat source).
 */

#include <gtest/gtest.h>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct LinuxFixture
{
    explicit LinuxFixture(policy::LinuxConfig cfg = {},
                          std::uint64_t mem = MiB(256))
    {
        setLogQuiet(true);
        sim::SystemConfig scfg;
        scfg.memoryBytes = mem;
        sys = std::make_unique<sim::System>(scfg);
        auto pol = std::make_unique<policy::LinuxThpPolicy>(cfg);
        policy = pol.get();
        sys->setPolicy(std::move(pol));
    }

    sim::Process &
    addIdle(const std::string &name, std::uint64_t bytes)
    {
        workload::StreamConfig wc;
        wc.footprintBytes = bytes;
        wc.workSeconds = 1e9;
        wc.initTouchAll = false;
        return sys->addProcess(
            name, std::make_unique<workload::StreamWorkload>(
                      name, wc, Rng(1)));
    }

    std::unique_ptr<sim::System> sys;
    policy::LinuxThpPolicy *policy = nullptr;
};

Addr
workloadBase(sim::Process &p)
{
    return static_cast<workload::StreamWorkload *>(&p.workload())
        ->baseAddr();
}

} // namespace

TEST(LinuxPolicy, FaultInEmptyRegionMapsHugeSynchronously)
{
    LinuxFixture f;
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn vpn = addrToVpn(workloadBase(proc)) + 13;
    auto out = f.policy->onFault(*f.sys, proc, vpn);
    EXPECT_TRUE(out.huge);
    EXPECT_EQ(out.pagesMapped, kPagesPerHuge);
    // Sync zeroing dominates: ~465us of the paper's Table 1.
    EXPECT_GE(out.latency, f.sys->costs().zero2m);
    EXPECT_TRUE(proc.space().pageTable().isHuge(vpnToHugeRegion(vpn)));
}

TEST(LinuxPolicy, PopulatedRegionFallsBackToBasePages)
{
    LinuxFixture f;
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn vpn = addrToVpn(workloadBase(proc));
    f.policy->onFault(*f.sys, proc, vpn);
    proc.space().madviseDontneed(workloadBase(proc), kPageSize);
    // Region now partially populated: next fault maps one base page.
    auto out = f.policy->onFault(*f.sys, proc, vpn);
    EXPECT_FALSE(out.huge);
    EXPECT_EQ(out.pagesMapped, 1u);
    EXPECT_LE(out.latency, usec(10));
}

TEST(LinuxPolicy, ThpOffNeverMapsHuge)
{
    LinuxFixture f(policy::LinuxConfig{.thp = false});
    auto &proc = f.addIdle("a", MiB(16));
    auto out = f.policy->onFault(*f.sys, proc,
                                 addrToVpn(workloadBase(proc)));
    EXPECT_FALSE(out.huge);
    // Base fault: ~3.5us with sync zeroing (Table 1).
    EXPECT_NEAR(static_cast<double>(out.latency), 3500.0, 500.0);
}

TEST(LinuxPolicy, FaultHugeUnderFragmentationCompactsInFaultPath)
{
    LinuxFixture f;
    f.sys->fragmentMemory(1.0);
    ASSERT_FALSE(f.sys->phys().buddy().canAlloc(kHugePageOrder));
    auto &proc = f.addIdle("a", MiB(16));
    auto out = f.policy->onFault(*f.sys, proc,
                                 addrToVpn(workloadBase(proc)));
    // Direct compaction cannot move the pinned unmovable pages, so
    // the fault degrades to a base page — after paying scan cost.
    EXPECT_FALSE(out.huge);
}

TEST(LinuxPolicy, KhugepagedPromotesSparseRegions)
{
    // max_ptes_none=511: even one present page triggers promotion —
    // this is how freed memory turns back into bloat in Fig. 1.
    LinuxFixture f;
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn base = addrToVpn(workloadBase(proc));
    f.policy->onFault(*f.sys, proc, base); // huge at fault
    proc.space().madviseDontneed(workloadBase(proc) + kPageSize,
                                 510 * kPageSize);
    ASSERT_FALSE(proc.space().pageTable().isHuge(
        vpnToHugeRegion(base)));
    ASSERT_EQ(proc.space().pageTable().population(
                  vpnToHugeRegion(base)),
              2u);
    f.sys->run(sec(2)); // khugepaged gets budget
    EXPECT_TRUE(proc.space().pageTable().isHuge(
        vpnToHugeRegion(base)));
    EXPECT_EQ(proc.space().rssPages(), 512u); // bloat re-created
}

TEST(LinuxPolicy, KhugepagedRespectsMaxPtesNone)
{
    policy::LinuxConfig cfg;
    cfg.faultHuge = false;  // force base faults
    cfg.maxPtesNone = 64;   // need >= 448 present pages
    LinuxFixture f(cfg);
    auto &proc = f.addIdle("a", MiB(16));
    const Vpn base = addrToVpn(workloadBase(proc));
    for (unsigned i = 0; i < 100; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    f.sys->run(sec(2));
    EXPECT_FALSE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
    for (unsigned i = 100; i < 460; i++)
        f.policy->onFault(*f.sys, proc, base + i);
    f.sys->run(sec(2));
    EXPECT_TRUE(
        proc.space().pageTable().isHuge(vpnToHugeRegion(base)));
}

TEST(LinuxPolicy, KhugepagedScansProcessesFcfs)
{
    policy::LinuxConfig cfg;
    cfg.faultHuge = false;
    LinuxFixture f(cfg, MiB(512));
    auto &p1 = f.addIdle("first", MiB(64));
    auto &p2 = f.addIdle("second", MiB(64));
    const Vpn b1 = addrToVpn(workloadBase(p1));
    const Vpn b2 = addrToVpn(workloadBase(p2));
    for (unsigned r = 0; r < 32; r++) {
        f.policy->onFault(*f.sys, p1, b1 + r * 512);
        f.policy->onFault(*f.sys, p2, b2 + r * 512);
    }
    // Give khugepaged a budget that can cover only ~half the work.
    f.sys->run(sec(1));
    const auto h1 = p1.space().pageTable().mappedHugePages();
    const auto h2 = p2.space().pageTable().mappedHugePages();
    // FCFS: the first process is fully promoted before the second
    // gets anything (the unfairness Fig. 7 shows).
    EXPECT_GT(h1, 0u);
    EXPECT_TRUE(h2 == 0 || h1 == 32)
        << "h1=" << h1 << " h2=" << h2;
}

TEST(LinuxPolicy, KhugepagedScansLowToHighVa)
{
    policy::LinuxConfig cfg;
    cfg.faultHuge = false;
    LinuxFixture f(cfg);
    auto &proc = f.addIdle("a", MiB(64));
    const Vpn base = addrToVpn(workloadBase(proc));
    for (unsigned r = 0; r < 16; r++)
        f.policy->onFault(*f.sys, proc, base + r * 512);
    // Small budget: only some regions get promoted; they must be the
    // lowest-VA ones.
    f.sys->costs().promotionsPerSec = 4.0;
    f.sys->run(sec(1));
    const auto &pt = proc.space().pageTable();
    int first_unpromoted = -1;
    for (unsigned r = 0; r < 16; r++) {
        if (!pt.isHuge(vpnToHugeRegion(base) + r)) {
            first_unpromoted = static_cast<int>(r);
            break;
        }
    }
    ASSERT_GE(first_unpromoted, 1);
    for (unsigned r = first_unpromoted; r < 16; r++)
        EXPECT_FALSE(pt.isHuge(vpnToHugeRegion(base) + r));
}
