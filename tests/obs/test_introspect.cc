/** @file Introspection snapshot tests: meminfo, buddyinfo, smaps,
 *  pagemap, heatmaps, and snapshot side-effect freedom. */

#include <gtest/gtest.h>

#include "hawksim.hh"
#include "harness/json.hh"

using namespace hawksim;

namespace {

std::unique_ptr<sim::System>
makeSys(std::uint64_t mem = MiB(128))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    return sys;
}

/** A stream that touches its whole footprint up front, then keeps
 *  streaming — so snapshots see populated page tables. */
std::unique_ptr<workload::StreamWorkload>
activeStream(std::uint64_t bytes, double work_s = 1e9)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.workSeconds = work_s;
    return std::make_unique<workload::StreamWorkload>("w", wc,
                                                      Rng(1));
}

/** An idle stream: no init touch, pages get mapped by hand. */
std::unique_ptr<workload::StreamWorkload>
idleStream(std::uint64_t bytes)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    return std::make_unique<workload::StreamWorkload>("w", wc,
                                                      Rng(1));
}

} // namespace

TEST(Introspect, MemInfoAndBuddyMatchPhysicalState)
{
    auto sys = makeSys(MiB(64));
    sys->addProcess("w", activeStream(MiB(8)));
    sys->run(sec(1));

    const obs::Snapshot s = obs::snapshot(*sys);
    EXPECT_EQ(s.time, sys->now());
    EXPECT_EQ(s.tick, sys->tickNo());
    EXPECT_EQ(s.mem.totalFrames, sys->phys().totalFrames());
    EXPECT_EQ(s.mem.freeFrames, sys->phys().freeFrames());
    EXPECT_EQ(s.mem.freeFrames + s.mem.usedFrames,
              s.mem.totalFrames);
    EXPECT_EQ(s.mem.freeZeroPages + s.mem.freeNonZeroPages,
              s.mem.freeFrames);
    EXPECT_GE(s.mem.fmfi9, 0.0);
    EXPECT_LE(s.mem.fmfi9, 1.0);

    // buddyinfo must tile exactly the free frames ...
    std::uint64_t free_pages = 0;
    int largest = -1;
    for (unsigned o = 0; o < obs::kInspectOrders; o++) {
        EXPECT_LE(s.buddy[o].zeroBlocks, s.buddy[o].freeBlocks);
        free_pages += s.buddy[o].freeBlocks << o;
        if (s.buddy[o].freeBlocks > 0)
            largest = static_cast<int>(o);
    }
    EXPECT_EQ(free_pages, s.mem.freeFrames);
    // ... and agree on the largest available order.
    EXPECT_EQ(largest, s.mem.largestFreeOrder);
}

TEST(Introspect, ProcViewAggregatesThePageTable)
{
    auto sys = makeSys();
    auto &proc = sys->addProcess("w", activeStream(MiB(16)));
    sys->run(sec(1));

    const obs::Snapshot s = obs::snapshot(*sys);
    ASSERT_EQ(s.procs.size(), 1u);
    const obs::ProcInfo &pi = s.procs[0];
    EXPECT_EQ(pi.pid, proc.pid());
    EXPECT_EQ(pi.name, "w");
    EXPECT_FALSE(pi.finished);
    EXPECT_EQ(pi.rssPages, proc.space().rssPages());
    EXPECT_EQ(pi.mappedPages, proc.space().mappedPages());
    EXPECT_GT(pi.mappedPages, 0u);
    EXPECT_EQ(pi.basePages + pi.hugePages * kPagesPerHuge,
              pi.mappedPages);
    EXPECT_EQ(pi.pageFaults, proc.pageFaults());
    EXPECT_LE(pi.zeroBackedPages, pi.rssPages);

    // The pagemap, the smaps and the headline counters are three
    // aggregations of one page-table walk; they must agree.
    std::uint64_t map_pop = 0, map_rss_upper = 0;
    for (const obs::RegionInfo &ri : pi.regions) {
        EXPECT_LE(ri.population, kPagesPerHuge);
        EXPECT_LE(ri.accessed, ri.population);
        EXPECT_LE(ri.dirty, ri.population);
        if (ri.huge) {
            EXPECT_EQ(ri.population, kPagesPerHuge);
        }
        map_pop += ri.population;
        map_rss_upper += ri.population - ri.zeroCow;
    }
    EXPECT_EQ(map_pop, pi.mappedPages);
    EXPECT_LE(pi.rssPages, map_rss_upper);

    std::uint64_t vma_pop = 0, vma_rss = 0, vma_huge = 0;
    for (const obs::VmaInfo &vi : pi.vmas) {
        EXPECT_LT(vi.start, vi.end);
        vma_pop += vi.mappedPages;
        vma_rss += vi.rssPages;
        vma_huge += vi.hugeRegions;
    }
    EXPECT_EQ(vma_pop, pi.mappedPages);
    EXPECT_EQ(vma_rss, pi.rssPages);
    EXPECT_GE(vma_huge, pi.hugePages);

    // TLB occupancy is a live-state read: used never exceeds size.
    EXPECT_LE(pi.tlb.l1_4k.used, pi.tlb.l1_4k.size);
    EXPECT_LE(pi.tlb.l1_2m.used, pi.tlb.l1_2m.size);
    EXPECT_LE(pi.tlb.l2.used, pi.tlb.l2.size);
    EXPECT_LE(pi.tlb.pwcPde.used, pi.tlb.pwcPde.size);
    EXPECT_LE(pi.tlb.pwcPdpte.used, pi.tlb.pwcPdpte.size);
    EXPECT_GT(pi.tlb.l1_4k.size, 0u);
}

TEST(Introspect, HawkEyeRunsExposeEmaAndAccessBuckets)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(128);
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    sys.addProcess("w", activeStream(MiB(32)));
    sys.run(sec(5));

    const auto *hawkeye = dynamic_cast<const core::HawkEyePolicy *>(
        sys.policyIfAny());
    ASSERT_NE(hawkeye, nullptr);
    const obs::Snapshot s = obs::snapshot(sys);
    ASSERT_EQ(s.procs.size(), 1u);

    const core::AccessTracker *trk = hawkeye->tracker(s.procs[0].pid);
    const core::AccessMap *am = hawkeye->accessMap(s.procs[0].pid);
    ASSERT_NE(trk, nullptr);
    bool tracked = false;
    for (const obs::RegionInfo &ri : s.procs[0].regions) {
        if (ri.ema >= 0.0) {
            tracked = true;
            EXPECT_LE(ri.ema, 512.0);
            auto it = trk->regions().find(ri.region);
            ASSERT_NE(it, trk->regions().end());
            EXPECT_DOUBLE_EQ(ri.ema, it->second.ema.value());
        }
        // Promoted regions leave the access map, so bucket == -1 is
        // legitimate; a bucketed region must match the map exactly.
        if (ri.bucket >= 0) {
            ASSERT_NE(am, nullptr);
            EXPECT_EQ(ri.bucket, am->bucketOf(ri.region));
        }
    }
    EXPECT_EQ(tracked, !trk->regions().empty());
    EXPECT_TRUE(tracked);
}

TEST(Introspect, SwapUsageIsAttributedToProcessesAndVmas)
{
    auto sys = makeSys(MiB(64));
    sys->enableSwap(true);
    auto &proc = sys->addProcess("w", idleStream(MiB(32)));
    const Addr base = static_cast<workload::StreamWorkload *>(
                          &proc.workload())
                          ->baseAddr();
    for (unsigned i = 0; i < 1024; i++) {
        auto blk = sys->phys().allocBlock(0, proc.pid(),
                                          mem::ZeroPref::kAny);
        ASSERT_TRUE(blk.has_value());
        proc.space().mapBasePage(addrToVpn(base) + i, blk->pfn);
    }
    TimeNs cost = 0;
    ASSERT_GT(sys->reclaimPages(256, &cost), 0u);
    ASSERT_GT(sys->swappedPages(), 0u);

    const obs::Snapshot s = obs::snapshot(*sys);
    EXPECT_EQ(s.mem.swappedPages, sys->swappedPages());
    EXPECT_EQ(s.mem.swapUsedPages, s.mem.swappedPages);
    std::uint64_t proc_sum = 0, vma_sum = 0;
    for (const obs::ProcInfo &pi : s.procs) {
        proc_sum += pi.swappedPages;
        for (const obs::VmaInfo &vi : pi.vmas)
            vma_sum += vi.swappedPages;
    }
    EXPECT_EQ(proc_sum, s.mem.swappedPages);
    EXPECT_EQ(vma_sum, s.mem.swappedPages);
}

TEST(Introspect, SnapshotsDoNotPerturbTheRun)
{
    // Two identical systems; one is snapshotted (and heatmapped)
    // repeatedly mid-run. Their final states must stay bit-identical.
    auto a = makeSys(MiB(64));
    auto b = makeSys(MiB(64));
    a->addProcess("w", activeStream(MiB(16)));
    b->addProcess("w", activeStream(MiB(16)));

    for (int step = 0; step < 8; step++) {
        a->run(sec(0.25));
        b->run(sec(0.25));
        const obs::Snapshot s = obs::snapshot(*b);
        (void)obs::renderHeatmap(s.procs[0]);
        (void)obs::formatMemInfo(s);
        (void)obs::formatBuddyInfo(s);
    }

    const obs::Snapshot fa = obs::snapshot(*a);
    const obs::Snapshot fb = obs::snapshot(*b);
    EXPECT_EQ(obs::snapshotToJson(fa).dump(),
              obs::snapshotToJson(fb).dump());
    EXPECT_EQ(a->phys().freeFrames(), b->phys().freeFrames());
    EXPECT_EQ(a->processes()[0]->pageFaults(),
              b->processes()[0]->pageFaults());
    EXPECT_EQ(a->processes()[0]->opsCompleted(),
              b->processes()[0]->opsCompleted());
}

TEST(Introspect, JsonCarriesSchemaShape)
{
    auto sys = makeSys();
    sys->addProcess("w", activeStream(MiB(8)));
    sys->run(sec(1));
    const obs::Snapshot s = obs::snapshot(*sys);
    const std::string text = obs::snapshotToJson(s).dump();

    std::string err;
    const harness::Json j = harness::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["meminfo"]["total_frames"].asInt(),
              static_cast<std::int64_t>(s.mem.totalFrames));
    EXPECT_EQ(j["buddyinfo"]["free_blocks"].size(),
              static_cast<std::size_t>(obs::kInspectOrders));
    ASSERT_EQ(j["processes"].size(), 1u);
    const harness::Json &p = j["processes"].at(0);
    EXPECT_EQ(p["rss_pages"].asInt(),
              static_cast<std::int64_t>(s.procs[0].rssPages));
    EXPECT_EQ(p["tlb"]["l1_4k"].size(), 2u);
    EXPECT_EQ(p["smaps"].size(), s.procs[0].vmas.size());
    EXPECT_EQ(p["pagemap"].size(), s.procs[0].regions.size());
}

TEST(Introspect, HeatmapAndTextViewsRender)
{
    auto sys = makeSys();
    sys->addProcess("w", activeStream(MiB(16)));
    sys->run(sec(2));
    const obs::Snapshot s = obs::snapshot(*sys);
    ASSERT_EQ(s.procs.size(), 1u);
    const obs::ProcInfo &pi = s.procs[0];

    const std::string hm = obs::renderHeatmap(pi);
    EXPECT_NE(hm.find("p1 w rss="), std::string::npos);
    EXPECT_NE(hm.find("acc|"), std::string::npos);
    EXPECT_NE(hm.find("map|"), std::string::npos);
    if (pi.hugePages > 0) {
        EXPECT_NE(hm.find('H'), std::string::npos);
    }

    const std::string mi = obs::formatMemInfo(s);
    EXPECT_NE(mi.find("MemTotal:"), std::string::npos);
    EXPECT_NE(mi.find("MemFree:"), std::string::npos);
    const std::string bi = obs::formatBuddyInfo(s);
    EXPECT_EQ(bi.rfind("order", 0), 0u);
    EXPECT_NE(bi.find("free(zero)"), std::string::npos);
}
