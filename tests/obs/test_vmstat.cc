/** @file VmstatRecorder tests: cadence, metrics series, take(). */

#include <gtest/gtest.h>

#include <cstdio>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<sim::System>
makeSys(std::uint64_t every_ticks, std::uint64_t mem = MiB(64))
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = mem;
    cfg.inspect.everyTicks = every_ticks;
    auto sys = std::make_unique<sim::System>(cfg);
    sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    return sys;
}

std::unique_ptr<workload::StreamWorkload>
idleStream(std::uint64_t bytes)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.workSeconds = 1e9;
    wc.initTouchAll = false;
    return std::make_unique<workload::StreamWorkload>("w", wc,
                                                      Rng(1));
}

} // namespace

TEST(Vmstat, DisabledByDefault)
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(64);
    EXPECT_FALSE(cfg.inspect.enabled());
    sim::System sys(cfg);
    sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    sys.addProcess("w", idleStream(MiB(4)));
    sys.run(sec(1));
    EXPECT_EQ(sys.vmstat(), nullptr);
    EXPECT_TRUE(sys.takeSnapshots().empty());
    EXPECT_FALSE(sys.metrics().has("vmstat.free_zero_pages"));
    EXPECT_FALSE(sys.metrics().has("vmstat.free_blocks_o00"));
}

TEST(Vmstat, SamplesOnTheTickPeriod)
{
    auto sys = makeSys(10);
    sys->addProcess("w", idleStream(MiB(4)));
    ASSERT_NE(sys->vmstat(), nullptr);
    EXPECT_EQ(sys->vmstat()->config().everyTicks, 10u);
    for (int i = 0; i < 35; i++)
        sys->tick();
    // tick_no hits 10, 20 and 30 within 35 ticks.
    const auto &snaps = sys->vmstat()->snapshots();
    ASSERT_EQ(snaps.size(), 3u);
    EXPECT_EQ(snaps[0].tick, 10u);
    EXPECT_EQ(snaps[1].tick, 20u);
    EXPECT_EQ(snaps[2].tick, 30u);
    EXPECT_LT(snaps[0].time, snaps[1].time);
}

TEST(Vmstat, HeadlineCountersLandInMetricsSeries)
{
    auto sys = makeSys(10);
    sys->addProcess("w", idleStream(MiB(8)));
    for (int i = 0; i < 30; i++)
        sys->tick();
    const auto &snaps = sys->vmstat()->snapshots();
    ASSERT_EQ(snaps.size(), 3u);

    sim::Metrics &m = sys->metrics();
    ASSERT_TRUE(m.has("vmstat.free_zero_pages"));
    ASSERT_TRUE(m.has("vmstat.swap_used_pages"));
    ASSERT_TRUE(m.has("vmstat.free_blocks_o00"));
    ASSERT_TRUE(m.has("vmstat.free_blocks_o10"));

    const auto &zero = m.series("vmstat.free_zero_pages").points();
    ASSERT_EQ(zero.size(), snaps.size());
    for (std::size_t i = 0; i < snaps.size(); i++) {
        EXPECT_EQ(zero[i].time, snaps[i].time);
        EXPECT_EQ(zero[i].value,
                  static_cast<double>(snaps[i].mem.freeZeroPages));
    }
    // Every buddy order has its own series matching the snapshots.
    for (unsigned o = 0; o < obs::kInspectOrders; o++) {
        char name[40];
        std::snprintf(name, sizeof(name), "vmstat.free_blocks_o%02u",
                      o);
        ASSERT_TRUE(m.has(name)) << name;
        const auto &pts = m.series(name).points();
        ASSERT_EQ(pts.size(), snaps.size());
        EXPECT_EQ(pts.back().value,
                  static_cast<double>(
                      snaps.back().buddy[o].freeBlocks));
    }
}

TEST(Vmstat, TakeMovesSnapshotsOut)
{
    auto sys = makeSys(5);
    sys->addProcess("w", idleStream(MiB(4)));
    for (int i = 0; i < 10; i++)
        sys->tick();
    const auto taken = sys->takeSnapshots();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_TRUE(sys->vmstat()->snapshots().empty());
    EXPECT_TRUE(sys->takeSnapshots().empty());
}
