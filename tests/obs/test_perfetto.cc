/** @file Perfetto/Chrome trace_event exporter tests. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/json.hh"
#include "obs/perfetto.hh"

using namespace hawksim;
using namespace hawksim::obs;
using hawksim::harness::Json;

namespace {

TraceEvent
makeEvent(std::uint64_t seq, TimeNs ts, TimeNs dur, Cat cat,
          std::int32_t pid, const char *name)
{
    TraceEvent ev;
    ev.seq = seq;
    ev.ts = ts;
    ev.dur = dur;
    ev.cat = cat;
    ev.pid = pid;
    ev.name = name;
    return ev;
}

} // namespace

TEST(Perfetto, EmptyDocumentIsValidJson)
{
    std::ostringstream os;
    PerfettoWriter w(os);
    w.finish();
    std::string err;
    const Json j = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["displayTimeUnit"].asString(), "ns");
    EXPECT_EQ(j["traceEvents"].size(), 0u);
}

TEST(Perfetto, DocumentSchemaAndEventFields)
{
    std::ostringstream os;
    PerfettoWriter w(os);
    w.beginProcess(1, "exp/label=a");
    w.runSpan(1, 2'000'000);
    TraceEvent ev = makeEvent(5, 1500, 2500, Cat::kFault, 3, "fault");
    ev.args[0] = {"vpn", 42};
    w.event(1, ev);
    w.event(1, makeEvent(6, 3000, 0, Cat::kProc, -1, "tick"));
    w.finish();

    std::string err;
    const Json j = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    const Json &events = j["traceEvents"];
    // process_name meta, run thread meta, run span, fault thread
    // meta, fault event, kernel/proc thread meta, instant.
    ASSERT_EQ(events.size(), 7u);

    EXPECT_EQ(events.at(0)["ph"].asString(), "M");
    EXPECT_EQ(events.at(0)["name"].asString(), "process_name");
    EXPECT_EQ(events.at(0)["args"]["name"].asString(), "exp/label=a");

    const Json &span = events.at(2);
    EXPECT_EQ(span["ph"].asString(), "X");
    EXPECT_EQ(span["tid"].asInt(), 0);
    EXPECT_DOUBLE_EQ(span["dur"].asDouble(), 2000.0); // us

    const Json &meta = events.at(3);
    EXPECT_EQ(meta["name"].asString(), "thread_name");
    EXPECT_EQ(meta["args"]["name"].asString(), "p3/fault");

    const Json &fault = events.at(4);
    EXPECT_EQ(fault["ph"].asString(), "X");
    EXPECT_EQ(fault["pid"].asInt(), 1);
    EXPECT_EQ(fault["cat"].asString(), "fault");
    EXPECT_EQ(fault["name"].asString(), "fault");
    EXPECT_DOUBLE_EQ(fault["ts"].asDouble(), 1.5);  // 1500ns
    EXPECT_DOUBLE_EQ(fault["dur"].asDouble(), 2.5); // 2500ns
    EXPECT_EQ(fault["args"]["seq"].asInt(), 5);
    EXPECT_EQ(fault["args"]["vpn"].asInt(), 42);

    const Json &kmeta = events.at(5);
    EXPECT_EQ(kmeta["args"]["name"].asString(), "kernel/proc");

    const Json &instant = events.at(6);
    EXPECT_EQ(instant["ph"].asString(), "i");
    EXPECT_EQ(instant["s"].asString(), "t");
}

TEST(Perfetto, TrackIdsSeparatePidAndCategory)
{
    const auto t1 = makeEvent(0, 0, 0, Cat::kFault, -1, "a");
    const auto t2 = makeEvent(0, 0, 0, Cat::kProc, -1, "a");
    const auto t3 = makeEvent(0, 0, 0, Cat::kFault, 0, "a");
    const auto t4 = makeEvent(0, 0, 0, Cat::kFault, 1, "a");
    std::ostringstream os;
    PerfettoWriter w(os);
    w.event(1, t1);
    w.event(1, t2);
    w.event(1, t3);
    w.event(1, t4);
    w.finish();
    std::string err;
    const Json j = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    std::set<std::int64_t> tids;
    for (const Json &e : j["traceEvents"].items()) {
        if (e["ph"].asString() == "i")
            tids.insert(e["tid"].asInt());
    }
    EXPECT_EQ(tids.size(), 4u); // all distinct, none on tid 0
    EXPECT_FALSE(tids.count(0));
}

TEST(Perfetto, EscapesControlAndQuoteCharacters)
{
    std::ostringstream os;
    PerfettoWriter w(os);
    w.beginProcess(1, "a\"b\\c\nd\te\x01f");
    w.finish();
    std::string err;
    const Json j = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["traceEvents"].at(0)["args"]["name"].asString(),
              "a\"b\\c\nd\te\x01f");
}

TEST(Perfetto, TimestampsAreFixedPointMicroseconds)
{
    std::ostringstream os;
    PerfettoWriter w(os);
    w.event(1, makeEvent(0, 1, 123'456'789, Cat::kZero, -1, "z"));
    w.finish();
    const std::string text = os.str();
    // 1ns -> 0.001us, 123456789ns -> 123456.789us: exact digits, no
    // scientific notation or float rounding.
    EXPECT_NE(text.find("\"ts\":0.001"), std::string::npos);
    EXPECT_NE(text.find("\"dur\":123456.789"), std::string::npos);
}
