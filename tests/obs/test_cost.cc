/** @file Cost accounting + latency histogram unit tests. */

#include <gtest/gtest.h>

#include "obs/cost_account.hh"

using namespace hawksim;
using namespace hawksim::obs;

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.minimum(), 0);
    EXPECT_EQ(h.maximum(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, TracksExactMinMaxMeanCount)
{
    LatencyHistogram h;
    h.add(100);
    h.add(200);
    h.add(700);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.minimum(), 100);
    EXPECT_EQ(h.maximum(), 700);
    EXPECT_NEAR(h.mean(), 1000.0 / 3.0, 1e-9);
}

TEST(LatencyHistogram, BucketBoundaries)
{
    LatencyHistogram h;
    // bit_width: 2048 -> bucket 12 ([2048, 4096)); 2047 -> bucket 11.
    h.add(2047);
    h.add(2048);
    EXPECT_EQ(h.bucket(11), 1u);
    EXPECT_EQ(h.bucket(12), 1u);
    h.add(0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(LatencyHistogram, QuantilesInterpolateWithinBucket)
{
    LatencyHistogram h;
    // Two samples sharing bucket 12 = [2048, 4096): the median
    // interpolates across the bucket, staying inside [min, max].
    h.add(2100);
    h.add(4000);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2048 + 0.5 * 2048);
    EXPECT_GE(h.quantile(0.95), h.quantile(0.50));
    // Exact extremes bypass interpolation.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4000.0);
}

TEST(LatencyHistogram, QuantilesNeverEscapeObservedRange)
{
    // Every sample is identical: bucket interpolation would report
    // p95 = 3993.6 > max without the clamp to [min, max].
    LatencyHistogram h;
    for (int i = 0; i < 1000; i++)
        h.add(3500);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3500.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 3500.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 3500.0);
}

TEST(LatencyHistogram, QuantileOrdersAcrossBuckets)
{
    LatencyHistogram h;
    for (int i = 0; i < 90; i++)
        h.add(1000); // bucket 10
    for (int i = 0; i < 10; i++)
        h.add(1'000'000); // bucket 20
    EXPECT_LT(h.quantile(0.5), 2048.0);
    EXPECT_GT(h.quantile(0.95), 100'000.0);
}

TEST(CostAccounting, ChargeAndCountAccumulate)
{
    CostAccounting c;
    c.charge(Subsys::kCompaction, 100);
    c.charge(Subsys::kCompaction, 50);
    c.charge(Subsys::kReclaim, 7);
    c.charge(Subsys::kZeroDaemon, 0); // no-op
    EXPECT_EQ(c.subsysNs(Subsys::kCompaction), 150);
    EXPECT_EQ(c.subsysNs(Subsys::kReclaim), 7);
    EXPECT_EQ(c.subsysNs(Subsys::kZeroDaemon), 0);
    EXPECT_EQ(c.totalNs(), 157);

    c.count(Counter::kPromotions);
    c.count(Counter::kMigratedPages, 512);
    EXPECT_EQ(c.counter(Counter::kPromotions), 1u);
    EXPECT_EQ(c.counter(Counter::kMigratedPages), 512u);
    EXPECT_EQ(c.counter(Counter::kSplits), 0u);
}

TEST(CostAccounting, FaultUpdatesCountersChargeAndHistogram)
{
    CostAccounting c;
    c.fault(3500, false);
    c.fault(465'000, true);
    EXPECT_EQ(c.counter(Counter::kFaults), 2u);
    EXPECT_EQ(c.counter(Counter::kHugeFaults), 1u);
    EXPECT_EQ(c.subsysNs(Subsys::kFaultPath), 468'500);
    EXPECT_EQ(c.faultLatency().count(), 2u);
    EXPECT_EQ(c.faultLatency().minimum(), 3500);
    EXPECT_EQ(c.faultLatency().maximum(), 465'000);
}

TEST(CostAccounting, NamesAreStableSnakeCase)
{
    EXPECT_STREQ(subsysName(Subsys::kFaultPath), "fault_path");
    EXPECT_STREQ(subsysName(Subsys::kTlbWalk), "tlb_walk");
    EXPECT_STREQ(counterName(Counter::kFaults), "faults");
    EXPECT_STREQ(counterName(Counter::kResvBroken), "resv_broken");
}
