/** @file Tracer / TraceScope / category-mask unit tests. */

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace hawksim;
using namespace hawksim::obs;

namespace {

TraceConfig
enabledConfig(std::size_t capacity = 1 << 16,
              CatMask mask = kAllCats)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.capacity = capacity;
    cfg.mask = mask;
    return cfg;
}

} // namespace

TEST(TraceCat, NamesRoundTrip)
{
    for (unsigned i = 0; i < kCatCount; i++) {
        const auto c = static_cast<Cat>(i);
        const auto back = catFromName(catName(c));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(catFromName("nope").has_value());
}

TEST(TraceCat, ParseMask)
{
    EXPECT_EQ(parseCatMask(""), kAllCats);
    EXPECT_EQ(parseCatMask("fault"), catBit(Cat::kFault));
    EXPECT_EQ(parseCatMask("fault,compact"),
              catBit(Cat::kFault) | catBit(Cat::kCompact));
    EXPECT_EQ(parseCatMask("fault,,compact"),
              catBit(Cat::kFault) | catBit(Cat::kCompact));
    EXPECT_FALSE(parseCatMask("fault,bogus").has_value());
    EXPECT_FALSE(parseCatMask("Fault").has_value()); // case-sensitive
}

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    EXPECT_FALSE(t.wants(Cat::kFault));
    t.complete(Cat::kFault, "fault", 1, 100, 10);
    t.instant(Cat::kProc, "x", -1, 0);
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, MaskFiltersCategories)
{
    Tracer t(enabledConfig(16, catBit(Cat::kCompact)));
    EXPECT_TRUE(t.wants(Cat::kCompact));
    EXPECT_FALSE(t.wants(Cat::kFault));
    t.complete(Cat::kFault, "fault", 1, 0, 1);
    t.complete(Cat::kCompact, "compact", -1, 0, 1);
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].cat, Cat::kCompact);
}

TEST(Tracer, SequenceAndFieldsAreStable)
{
    Tracer t(enabledConfig());
    t.complete(Cat::kFault, "fault", 3, 1000, 50,
               {{"vpn", 42}, {"pages", 512}});
    t.instant(Cat::kProc, "exit", 7, 2000);
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].ts, 1000);
    EXPECT_EQ(events[0].dur, 50);
    EXPECT_EQ(events[0].pid, 3);
    EXPECT_STREQ(events[0].name, "fault");
    ASSERT_EQ(events[0].argCount(), 2u);
    EXPECT_STREQ(events[0].args[0].key, "vpn");
    EXPECT_EQ(events[0].args[0].value, 42);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[1].dur, 0);
}

TEST(Tracer, RingWrapsKeepingNewestOldestFirst)
{
    Tracer t(enabledConfig(4));
    for (int i = 0; i < 6; i++)
        t.instant(Cat::kProc, "e", -1, i * 10);
    EXPECT_EQ(t.emitted(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 4u);
    // Events 0 and 1 were overwritten; 2..5 remain, oldest first.
    for (std::size_t i = 0; i < 4; i++) {
        EXPECT_EQ(events[i].seq, i + 2);
        EXPECT_EQ(events[i].ts, static_cast<TimeNs>((i + 2) * 10));
    }
}

TEST(Tracer, DropsAreCountedPerOverwrittenCategory)
{
    Tracer t(enabledConfig(4));
    // Fill the ring with 4 fault events, then push 3 proc events:
    // the first 3 fault events get overwritten.
    for (int i = 0; i < 4; i++)
        t.instant(Cat::kFault, "f", 1, i);
    for (int i = 0; i < 3; i++)
        t.instant(Cat::kProc, "p", 1, 100 + i);
    EXPECT_EQ(t.emitted(), 7u);
    EXPECT_EQ(t.dropped(), 3u);
    EXPECT_EQ(t.droppedOf(Cat::kFault), 3u);
    EXPECT_EQ(t.droppedOf(Cat::kProc), 0u);

    const TraceStats st = t.stats();
    EXPECT_TRUE(st.enabled);
    EXPECT_EQ(st.emitted, 7u);
    EXPECT_EQ(st.dropped, 3u);
    EXPECT_EQ(st.droppedByCat[static_cast<unsigned>(Cat::kFault)],
              3u);
    std::uint64_t sum = 0;
    for (unsigned c = 0; c < kCatCount; c++)
        sum += st.droppedByCat[c];
    EXPECT_EQ(sum, st.dropped);
}

TEST(Tracer, NoDropsUnderCapacity)
{
    Tracer t(enabledConfig(16));
    for (int i = 0; i < 16; i++)
        t.instant(Cat::kZero, "z", -1, i);
    EXPECT_EQ(t.dropped(), 0u);
    const TraceStats st = t.stats();
    EXPECT_EQ(st.dropped, 0u);
    for (unsigned c = 0; c < kCatCount; c++)
        EXPECT_EQ(st.droppedByCat[c], 0u);
    // Disabled tracers report disabled stats.
    Tracer off;
    EXPECT_FALSE(off.stats().enabled);
}

TEST(Tracer, DrainClearsAndSeqKeepsCounting)
{
    Tracer t(enabledConfig(8));
    t.instant(Cat::kProc, "a", -1, 0);
    ASSERT_EQ(t.drain().size(), 1u);
    EXPECT_TRUE(t.drain().empty());
    t.instant(Cat::kProc, "b", -1, 1);
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 1u); // global order survives drains
}

TEST(Tracer, IdenticalInputsGiveIdenticalStreams)
{
    const auto emitAll = [](Tracer &t) {
        for (int i = 0; i < 100; i++) {
            t.complete(Cat::kZero, "batch", -1, i * 7, i,
                       {{"pages", i}});
        }
        return t.drain();
    };
    Tracer a(enabledConfig(64)), b(enabledConfig(64));
    const auto ea = emitAll(a);
    const auto eb = emitAll(b);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); i++) {
        EXPECT_EQ(ea[i].seq, eb[i].seq);
        EXPECT_EQ(ea[i].ts, eb[i].ts);
        EXPECT_EQ(ea[i].dur, eb[i].dur);
    }
}

TEST(TraceScope, EmitsOnDestructionWithArgsAndDur)
{
    Tracer t(enabledConfig());
    {
        TraceScope scope(t, Cat::kReclaim, "reclaim", -1, 500);
        ASSERT_TRUE(scope.live());
        scope.arg("requested", 64);
        scope.arg("freed", 32);
        scope.dur(1234);
    }
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].ts, 500);
    EXPECT_EQ(events[0].dur, 1234);
    ASSERT_EQ(events[0].argCount(), 2u);
    EXPECT_STREQ(events[0].args[1].key, "freed");
    EXPECT_EQ(events[0].args[1].value, 32);
}

TEST(TraceScope, DeadWhenDisabledOrMasked)
{
    Tracer off;
    {
        TraceScope scope(off, Cat::kFault, "f", 1, 0);
        EXPECT_FALSE(scope.live());
        scope.arg("ignored", 1);
    }
    EXPECT_EQ(off.emitted(), 0u);

    Tracer masked(enabledConfig(16, catBit(Cat::kZero)));
    {
        TraceScope scope(masked, Cat::kFault, "f", 1, 0);
        EXPECT_FALSE(scope.live());
    }
    EXPECT_EQ(masked.emitted(), 0u);
}

TEST(TraceScope, ExtraArgsBeyondCapacityAreDropped)
{
    Tracer t(enabledConfig());
    {
        TraceScope scope(t, Cat::kProc, "p", -1, 0);
        for (int i = 0; i < 10; i++)
            scope.arg("k", i);
    }
    const auto events = t.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].argCount(), kMaxTraceArgs);
}
