/**
 * @file
 * Harness-level restore-equivalence tests: a chaos sweep that
 * checkpoints mid-run, is restored per grid point, and resumed to
 * completion must reproduce the straight run's report, trace and
 * inspect artifacts byte for byte — independent of --jobs, and with
 * checkpoint files themselves identical across worker counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "hawksim.hh"
#include "snap/snap.hh"

using namespace hawksim;

namespace hawksim::harness {
namespace {

/** A table2-style chaos point: one streaming process, HawkEye. */
void
registerSnapChaos(Registry &reg)
{
    reg.add("snapchaos", "checkpoint/restore equivalence probe")
        .axis("mb", {"8", "16", "24"})
        .run([](const RunContext &ctx) {
            setLogQuiet(true);
            sim::SystemConfig cfg;
            cfg.memoryBytes = MiB(64);
            cfg.seed = ctx.seed();
            cfg.trace = ctx.trace();
            cfg.fault = ctx.fault();
            cfg.inspect = ctx.inspect();
            cfg.snap = ctx.snap();
            sim::System sys(cfg);
            core::HawkEyeConfig hc;
            hc.samplePeriod = msec(200);
            hc.sampleWindow = msec(50);
            sys.setPolicy(std::make_unique<core::HawkEyePolicy>(hc));
            workload::StreamConfig wc;
            wc.footprintBytes =
                MiB(std::stoull(ctx.param("mb")));
            wc.wssBytes = wc.footprintBytes / 2;
            wc.zipfS = 0.6;
            wc.workSeconds = 0.5;
            sys.addProcess("w",
                           std::make_unique<workload::StreamWorkload>(
                               "w", wc, sys.rng().fork()));
            sys.runUntilAllDone(sec(30));
            RunOutput out;
            out.scalar("runtime_s",
                       static_cast<double>(sys.now()) / 1e9);
            out.simTimeNs = sys.now();
            out.metrics = std::move(sys.metrics());
            out.captureObs(sys);
            return out;
        });
}

RunnerOptions
chaosOpts(unsigned jobs)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.masterSeed = 42;
    opts.verbose = false;
    opts.fault.rate = 0.01;
    opts.fault.auditOnFault = true;
    opts.fault.oomKiller = true;
    opts.trace.enabled = true;
    opts.trace.capacity = 1 << 12;
    opts.inspect.everyTicks = 5;
    return opts;
}

std::string
traceOf(const Report &r)
{
    std::ostringstream os;
    r.writeTrace(os);
    return os.str();
}

/** A report holding just run @p i of @p r (for artifact compares). */
Report
only(const Report &r, std::size_t i)
{
    Report one;
    one.masterSeed = r.masterSeed;
    one.runs.push_back(r.runs[i]);
    return one;
}

TEST(RestoreHarness, CheckpointedSweepMatchesAcrossJobsAndRestores)
{
    const std::string dir1 = "snap_test_tmp/harness-j1";
    const std::string dir8 = "snap_test_tmp/harness-j8";
    std::filesystem::remove_all("snap_test_tmp");

    Registry reg;
    registerSnapChaos(reg);

    // Straight chaos runs, checkpointing every 10 ticks: the report
    // and every artifact must not depend on --jobs, and neither may
    // the checkpoint files themselves.
    RunnerOptions o1 = chaosOpts(1);
    o1.snap.checkpointEvery = 10;
    o1.checkpointOut = dir1;
    const Report r1 = Runner(o1).run(reg);

    RunnerOptions o8 = chaosOpts(8);
    o8.snap.checkpointEvery = 10;
    o8.checkpointOut = dir8;
    const Report r8 = Runner(o8).run(reg);

    ASSERT_EQ(r1.runs.size(), 3u);
    EXPECT_EQ(r1.toJson().dump(), r8.toJson().dump());
    EXPECT_EQ(r1.inspectJson().dump(), r8.inspectJson().dump());
    EXPECT_EQ(traceOf(r1), traceOf(r8));
    for (std::size_t i = 0; i < r1.runs.size(); i++) {
        const std::string f =
            "snapchaos-" + std::to_string(i) + "-tick10.snap";
        ASSERT_TRUE(std::filesystem::exists(dir1 + "/" + f)) << f;
        EXPECT_EQ(snap::readFileOrDie(dir1 + "/" + f),
                  snap::readFileOrDie(dir8 + "/" + f))
            << f;
    }

    // Restore each point from its tick-10 checkpoint and resume to
    // completion (alternating worker counts): the resumed run's
    // report row, inspect dump and trace must equal the straight
    // run's, byte for byte.
    for (std::size_t i = 0; i < r1.runs.size(); i++) {
        RunnerOptions ro = chaosOpts(i % 2 ? 8 : 1);
        ro.filter = "mb=" + r1.runs[i].point.param("mb");
        ro.snap.restorePath = dir1 + "/snapchaos-" +
                              std::to_string(i) + "-tick10.snap";
        const Report rr = Runner(ro).run(reg);
        ASSERT_EQ(rr.runs.size(), 1u);
        const Report straight = only(r1, i);
        EXPECT_EQ(rr.toJson().dump(), straight.toJson().dump());
        EXPECT_EQ(rr.inspectJson().dump(),
                  straight.inspectJson().dump());
        EXPECT_EQ(traceOf(rr), traceOf(straight));
    }
    std::filesystem::remove_all("snap_test_tmp");
}

TEST(RestoreHarness, ReplayToTickTruncatesEveryRun)
{
    Registry reg;
    registerSnapChaos(reg);
    RunnerOptions ro = chaosOpts(2);
    ro.snap.replayToTick = 12;
    const Report r = Runner(ro).run(reg);
    ASSERT_EQ(r.runs.size(), 3u);
    for (const RunRecord &rec : r.runs)
        EXPECT_EQ(rec.output.simTimeNs,
                  static_cast<TimeNs>(12) * msec(10));
}

} // namespace
} // namespace hawksim::harness
