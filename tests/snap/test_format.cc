/**
 * @file
 * `hawksim-snap/v1` container tests: header layout, canonical scalar
 * encoding, section framing, and the fatality of every corruption a
 * reader can detect. Snapshots are exact-state carriers — a reader
 * that limps past damage would silently diverge from the
 * checkpointed run, so damage must die loudly instead.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "base/logging.hh"
#include "snap/snap.hh"

namespace hawksim::snap {
namespace {

/** A minimal valid image: one "TST " section with a known payload. */
std::string
oneSectionImage()
{
    Writer w;
    w.beginSection("TST ");
    w.u64(0xDEADBEEFCAFEF00Dull);
    w.str("payload");
    w.endSection();
    return w.bytes();
}

TEST(SnapFormat, Crc32KnownAnswer)
{
    // The IEEE 802.3 check value for the standard 9-byte vector.
    const char *v = "123456789";
    EXPECT_EQ(crc32(v, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(v, 0), 0x00000000u);
}

TEST(SnapFormat, HeaderLayoutIsPinned)
{
    const std::string img = oneSectionImage();
    // magic(8) + version u32(4) + schema len u64(8) + schema(15).
    ASSERT_GE(img.size(), 35u);
    EXPECT_EQ(img.substr(0, 8), kSnapMagic);
    EXPECT_EQ(static_cast<unsigned char>(img[8]), kSnapVersion);
    EXPECT_EQ(static_cast<unsigned char>(img[9]), 0);
    EXPECT_EQ(static_cast<unsigned char>(img[10]), 0);
    EXPECT_EQ(static_cast<unsigned char>(img[11]), 0);
    EXPECT_EQ(static_cast<unsigned char>(img[12]),
              std::string(kSnapSchema).size());
    EXPECT_EQ(img.substr(20, 15), kSnapSchema);
    // First section frame directly after the header.
    EXPECT_EQ(img.substr(35, 4), "TST ");
}

TEST(SnapFormat, IntegersAreLittleEndianBytewise)
{
    Writer w;
    w.beginSection("TST ");
    w.u32(0x11223344u);
    w.endSection();
    const std::string &img = w.bytes();
    // Payload starts after header(35) + tag(4) + len(8) + crc(4).
    const std::size_t p = 35 + 16;
    ASSERT_EQ(img.size(), p + 4);
    EXPECT_EQ(static_cast<unsigned char>(img[p + 0]), 0x44);
    EXPECT_EQ(static_cast<unsigned char>(img[p + 1]), 0x33);
    EXPECT_EQ(static_cast<unsigned char>(img[p + 2]), 0x22);
    EXPECT_EQ(static_cast<unsigned char>(img[p + 3]), 0x11);
}

TEST(SnapFormat, ScalarRoundtrip)
{
    Writer w;
    w.beginSection("TST ");
    w.u8(0xAB);
    w.b(true);
    w.b(false);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(std::numeric_limits<std::uint64_t>::max());
    w.i32(-12345);
    w.i64(std::numeric_limits<std::int64_t>::min());
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::denorm_min());
    w.f64(std::numeric_limits<double>::infinity());
    w.str("");
    w.str(std::string("nul\0inside", 10));
    w.endSection();

    Reader r(w.bytes());
    EXPECT_EQ(r.peekTag(), "TST ");
    r.openSection("TST ");
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(r.i32(), -12345);
    EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
    const double nz = r.f64();
    EXPECT_EQ(nz, 0.0);
    EXPECT_TRUE(std::signbit(nz)); // exact bits, not value identity
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
    r.endSection();
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapFormat, SameValuesSameBytes)
{
    // Canonical: two writers fed identical values emit identical
    // images (this is what the snapshot-roundtrip audit builds on).
    EXPECT_EQ(oneSectionImage(), oneSectionImage());
}

TEST(SnapFormat, MultiSectionFramingSkipAndTryOpen)
{
    Writer w;
    w.beginSection("AAA ");
    w.u32(1);
    w.endSection();
    w.beginSection("BBB ");
    w.u32(2);
    w.endSection();
    w.beginSection("CCC ");
    w.u32(3);
    w.endSection();

    Reader r(w.bytes());
    // tryOpenSection on a mismatch leaves the cursor in place.
    EXPECT_FALSE(r.tryOpenSection("BBB "));
    EXPECT_EQ(r.peekTag(), "AAA ");
    ASSERT_TRUE(r.tryOpenSection("AAA "));
    EXPECT_EQ(r.u32(), 1u);
    r.endSection();
    // Skip is CRC-verified but wholesale.
    r.skipSection();
    EXPECT_EQ(r.peekTag(), "CCC ");
    r.openSection("CCC ");
    EXPECT_EQ(r.u32(), 3u);
    r.endSection();
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(r.peekTag(), "");
}

TEST(SnapFormatDeath, BadMagicIsFatal)
{
    std::string img = oneSectionImage();
    img[0] = 'X';
    EXPECT_DEATH(Reader r(img), "bad magic");
    EXPECT_DEATH(Reader r2("short"), "bad magic");
}

TEST(SnapFormatDeath, WrongVersionIsFatal)
{
    std::string img = oneSectionImage();
    img[8] = 2; // version u32 at offset 8, little-endian
    EXPECT_DEATH(Reader r(img), "format version 2");
}

TEST(SnapFormatDeath, PayloadCorruptionIsFatal)
{
    // Flip one bit in the section payload: the CRC must catch it.
    std::string img = oneSectionImage();
    img[img.size() - 1] =
        static_cast<char>(img[img.size() - 1] ^ 0x01);
    EXPECT_DEATH(
        {
            Reader r(img);
            r.openSection("TST ");
        },
        "CRC mismatch in section \"TST \"");
    // skipSection verifies too — damage can't hide in skipped
    // sections of a forked restore.
    EXPECT_DEATH(
        {
            Reader r(img);
            r.skipSection();
        },
        "CRC mismatch");
}

TEST(SnapFormatDeath, TruncationIsFatal)
{
    const std::string img = oneSectionImage();
    // Cut inside the payload.
    EXPECT_DEATH(
        {
            Reader r(img.substr(0, img.size() - 3));
            r.openSection("TST ");
        },
        "truncated section payload");
    // Cut inside the frame header.
    EXPECT_DEATH(
        {
            Reader r(img.substr(0, 35 + 10));
            r.openSection("TST ");
        },
        "truncated section frame");
}

TEST(SnapFormatDeath, TagMismatchIsFatal)
{
    EXPECT_DEATH(
        {
            Reader r(oneSectionImage());
            r.openSection("ZZZ ");
        },
        "expected section \"ZZZ \", found \"TST \"");
}

TEST(SnapFormatDeath, OverAndUnderReadAreFatal)
{
    // Reading past the payload is fatal...
    EXPECT_DEATH(
        {
            Reader r(oneSectionImage());
            r.openSection("TST ");
            r.u64();
            r.str();
            r.u8();
        },
        "read past section payload");
    // ...and so is closing a section with bytes unconsumed.
    EXPECT_DEATH(
        {
            Reader r(oneSectionImage());
            r.openSection("TST ");
            r.u64();
            r.endSection();
        },
        "unconsumed payload bytes");
    // A string length that overruns the section cannot allocate.
    Writer w;
    w.beginSection("TST ");
    w.u64(1u << 20); // lies: claims a 1MB string with no bytes
    w.endSection();
    EXPECT_DEATH(
        {
            Reader r(w.bytes());
            r.openSection("TST ");
            (void)r.str();
        },
        "string exceeds section payload");
}

TEST(SnapFormatDeath, WriterMisuseIsFatal)
{
    EXPECT_DEATH(
        {
            Writer w;
            w.beginSection("AAA ");
            w.beginSection("BBB ");
        },
        "nested section");
    EXPECT_DEATH(
        {
            Writer w;
            w.beginSection("TOOLONG");
        },
        "");
    EXPECT_DEATH(
        {
            Writer w;
            w.beginSection("AAA ");
            (void)w.bytes();
        },
        "");
}

} // namespace
} // namespace hawksim::snap
