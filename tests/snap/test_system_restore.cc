/**
 * @file
 * System-level checkpoint/restore tests: save -> load -> save
 * bit-equality (with the full invariant audit restoreFromBytes runs
 * on every load), byte-identical resumption of chaos runs, fork
 * restores that legally skip sections, replay-to-tick, and the
 * checkpoint-every file emitter.
 *
 * The restore model under test is build-then-load: the caller
 * reconstructs an identical System (same config, seed, policy,
 * processes), then a snapshot overwrites every piece of dynamic
 * state. Equality of two Systems is asserted the strongest way
 * available — their saveImage() bytes — which covers frames, buddy
 * lists, page tables, TLBs, swap, policy daemons, RNG streams,
 * metrics, trace ring and cost accounting in one comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "hawksim.hh"
#include "snap/snap.hh"

using namespace hawksim;

namespace {

/** Workload footprints differ so the two processes stay distinct. */
std::unique_ptr<workload::StreamWorkload>
stream(const std::string &name, std::uint64_t bytes, double seconds,
       std::uint64_t seed)
{
    workload::StreamConfig wc;
    wc.footprintBytes = bytes;
    wc.wssBytes = bytes / 2;
    wc.zipfS = 0.8;
    wc.workSeconds = seconds;
    return std::make_unique<workload::StreamWorkload>(name, wc,
                                                      Rng(seed));
}

/**
 * A chaos system under the HawkEye policy: fault injection armed,
 * audits on every injected fault, OOM killer engaged, tracing and
 * periodic snapshots on — every serializable subsystem active.
 */
std::unique_ptr<sim::System>
makeChaos(bool hawkeye = true, snap::SnapConfig sc = {})
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = MiB(96);
    cfg.seed = 7;
    cfg.fault.rate = 0.02;
    cfg.fault.auditOnFault = true;
    cfg.fault.oomKiller = true;
    cfg.trace.enabled = true;
    cfg.trace.capacity = 1 << 12;
    cfg.inspect.everyTicks = 7;
    cfg.snap = sc;
    auto sys = std::make_unique<sim::System>(cfg);
    if (hawkeye) {
        core::HawkEyeConfig hc;
        hc.samplePeriod = msec(200);
        hc.sampleWindow = msec(50);
        sys->setPolicy(std::make_unique<core::HawkEyePolicy>(hc));
    } else {
        sys->setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    }
    sys->addProcess("alpha", stream("alpha", MiB(24), 0.6, 11));
    sys->addProcess("beta", stream("beta", MiB(12), 0.4, 13));
    return sys;
}

/** Scratch directory inside the build tree; wiped per test. */
class SnapDir
{
  public:
    explicit SnapDir(const std::string &name)
        : path_("snap_test_tmp/" + name)
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~SnapDir() { std::filesystem::remove_all(path_); }
    std::string operator/(const std::string &f) const
    {
        return path_ + "/" + f;
    }

  private:
    std::string path_;
};

TEST(SystemRestore, SaveLoadSaveIsBitEqual)
{
    auto a = makeChaos();
    for (int i = 0; i < 25; i++)
        a->tick();
    const std::string img = a->saveImage();

    // restoreFromBytes runs the full invariant audit plus the
    // snapshot-roundtrip check (save -> load -> save must be
    // bit-equal) and panics on any violation, so surviving this call
    // is itself the assertion.
    auto b = makeChaos();
    b->restoreFromBytes(img);
    EXPECT_EQ(b->saveImage(), img);
    EXPECT_EQ(b->now(), a->now());
}

TEST(SystemRestore, ResumedChaosRunIsByteIdentical)
{
    // Straight run to completion.
    auto straight = makeChaos();
    straight->runUntilAllDone(sec(30));
    const std::string want = straight->saveImage();

    // Interrupted run: checkpoint at tick 20, rebuild, restore,
    // resume to completion.
    auto first = makeChaos();
    for (int i = 0; i < 20; i++)
        first->tick();
    const std::string cp = first->saveImage();

    auto resumed = makeChaos();
    resumed->restoreFromBytes(cp);
    resumed->runUntilAllDone(sec(30));
    EXPECT_EQ(resumed->saveImage(), want);
}

TEST(SystemRestore, TranslationCacheToggleDoesNotLeakIntoImages)
{
    auto warm = makeChaos();
    for (int i = 0; i < 20; i++)
        warm->tick();
    const std::string cp = warm->saveImage();

    auto straight = makeChaos();
    straight->runUntilAllDone(sec(30));
    const std::string want = straight->saveImage();

    // Restore + resume with the page-table translation cache off:
    // the cache is a simulator-speed knob, so the final image must
    // still match a straight tcache-on run bit for bit.
    vm::PageTable::setTranslationCacheEnabled(false);
    auto resumed = makeChaos();
    resumed->restoreFromBytes(cp);
    resumed->runUntilAllDone(sec(30));
    vm::PageTable::setTranslationCacheEnabled(true);
    EXPECT_EQ(resumed->saveImage(), want);
}

TEST(SystemRestore, ForkSkipsPolicySectionAcrossPolicies)
{
    // Warm-start a *different* policy from a checkpointed image: the
    // POLI section no longer applies and is legally skipped; the
    // machine state (frames, page tables, TLBs, RNG) still restores
    // and the run continues under the new policy.
    auto linux_sys = makeChaos(/*hawkeye=*/false);
    for (int i = 0; i < 15; i++)
        linux_sys->tick();
    const std::string cp = linux_sys->saveImage();

    auto forked = makeChaos(/*hawkeye=*/true);
    forked->restoreFromBytes(cp);
    EXPECT_EQ(forked->now(), linux_sys->now());
    forked->runUntilAllDone(sec(30));
    for (const auto &p : forked->processes())
        EXPECT_TRUE(p->finished() || p->oomKilled());
}

TEST(SystemRestore, ReplayToTickStopsTheRunLoops)
{
    snap::SnapConfig sc;
    sc.replayToTick = 10;
    auto sys = makeChaos(true, sc);
    sys->run(sec(30));
    EXPECT_EQ(sys->now(), 10 * sys->config().tickQuantum);
    // The limit also halts runUntilAllDone without a timeout panic.
    auto sys2 = makeChaos(true, sc);
    sys2->runUntilAllDone(sec(30));
    EXPECT_EQ(sys2->now(), 10 * sys2->config().tickQuantum);
}

TEST(SystemRestore, CheckpointEveryEmitsResumableFiles)
{
    SnapDir dir("every");
    snap::SnapConfig sc;
    sc.checkpointEvery = 8;
    sc.checkpointPrefix = dir / "cp";
    auto sys = makeChaos(true, sc);
    for (int i = 0; i < 20; i++)
        sys->tick();
    ASSERT_TRUE(std::filesystem::exists(dir / "cp-tick8.snap"));
    ASSERT_TRUE(std::filesystem::exists(dir / "cp-tick16.snap"));

    // A restored run re-emits the checkpoint it was restored from,
    // byte-identically, and then resumes to the same final state.
    const std::string cp16 =
        snap::readFileOrDie(dir / "cp-tick16.snap");
    SnapDir dir2("every-resume");
    snap::SnapConfig sc2;
    sc2.checkpointEvery = 8;
    sc2.checkpointPrefix = dir2 / "cp";
    sc2.restorePath = dir / "cp-tick16.snap";
    auto resumed = makeChaos(true, sc2);
    resumed->tick(); // restore applies, tick-16 checkpoint re-emits
    EXPECT_EQ(snap::readFileOrDie(dir2 / "cp-tick16.snap"), cp16);

    sys->runUntilAllDone(sec(30));
    resumed->runUntilAllDone(sec(30));
    EXPECT_EQ(resumed->saveImage(), sys->saveImage());
}

TEST(SystemRestoreDeath, MismatchedRebuildIsFatal)
{
    auto a = makeChaos();
    for (int i = 0; i < 5; i++)
        a->tick();
    const std::string img = a->saveImage();

    // A rebuild with different memory geometry must be refused: the
    // CONF fingerprint exists so a snapshot can never be applied to
    // a machine it does not describe.
    EXPECT_DEATH(
        {
            setLogQuiet(true);
            sim::SystemConfig cfg;
            cfg.memoryBytes = MiB(64);
            cfg.seed = 7;
            sim::System other(cfg);
            other.setPolicy(
                std::make_unique<policy::LinuxThpPolicy>());
            other.restoreFromBytes(img);
        },
        "");
}

} // namespace
