/** @file LLC model + pre-zeroing interference tests (Fig. 10). */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace hawksim;
using cache::CacheConfig;
using cache::CacheSim;
using cache::InterferenceWorkload;

TEST(CacheSim, HitsAfterFill)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim c(cfg);
    for (std::uint64_t l = 0; l < 100; l++)
        c.access(l);
    c.resetStats();
    for (std::uint64_t l = 0; l < 100; l++)
        c.access(l);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.hits(), 100u);
}

TEST(CacheSim, NonTemporalBypassDoesNotAllocate)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim c(cfg);
    c.access(7, /*non_temporal=*/true);
    c.resetStats();
    c.access(7);
    EXPECT_EQ(c.misses(), 1u); // was never cached
}

TEST(CacheSim, NonTemporalStreamDoesNotEvictWorkingSet)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim c(cfg);
    for (std::uint64_t l = 0; l < 512; l++)
        c.access(l); // working set cached (32KB)
    // A huge NT stream passes through...
    for (std::uint64_t l = 1 << 20; l < (1 << 20) + 100000; l++)
        c.access(l, true);
    c.resetStats();
    for (std::uint64_t l = 0; l < 512; l++)
        c.access(l);
    EXPECT_EQ(c.misses(), 0u) << "NT stores must not pollute";
}

TEST(CacheSim, CachingStreamEvictsWorkingSet)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim c(cfg);
    for (std::uint64_t l = 0; l < 512; l++)
        c.access(l);
    for (std::uint64_t l = 1 << 20; l < (1 << 20) + 100000; l++)
        c.access(l, false); // caching stores thrash everything
    c.resetStats();
    for (std::uint64_t l = 0; l < 512; l++)
        c.access(l);
    EXPECT_GT(c.misses(), 400u);
}

TEST(Interference, CachingStoresHurtMoreThanNonTemporal)
{
    // The Fig. 10 headline: for a cache-sensitive workload, zeroing
    // with caching stores costs far more than with NT stores.
    InterferenceWorkload w{"cache-sensitive", 20ull << 20, 200e6,
                           0.2};
    const auto nt =
        cache::runInterference(w, 1e9, /*non_temporal=*/true, Rng(1));
    const auto cached = cache::runInterference(
        w, 1e9, /*non_temporal=*/false, Rng(1));
    EXPECT_GT(cached.overheadPct, nt.overheadPct * 2);
    EXPECT_GE(cached.missRate, cached.baselineMissRate);
}

TEST(Interference, NonTemporalOverheadIsModest)
{
    InterferenceWorkload w{"cache-sensitive", 20ull << 20, 200e6,
                           0.2};
    const auto nt =
        cache::runInterference(w, 1e9, true, Rng(2));
    EXPECT_LT(nt.overheadPct, 12.0);
}

TEST(Interference, CacheInsensitiveWorkloadBarelyAffected)
{
    // A tiny working set stays resident regardless of zeroing mode.
    InterferenceWorkload w{"tiny", 256ull << 10, 200e6, 0.0};
    const auto cached =
        cache::runInterference(w, 1e9, false, Rng(3));
    EXPECT_LT(cached.missRate, 0.05);
}

TEST(Interference, OverheadScalesWithZeroingRate)
{
    InterferenceWorkload w{"mid", 20ull << 20, 200e6, 0.2};
    const auto slow =
        cache::runInterference(w, 100e6, false, Rng(4));
    const auto fast =
        cache::runInterference(w, 2e9, false, Rng(4));
    EXPECT_GT(fast.overheadPct, slow.overheadPct);
}
