/**
 * @file
 * Replay a memory trace against a chosen policy and dump the metrics
 * time series as CSV (or harness-report JSON with --json).
 *
 *   $ ./trace_replay [trace-file [policy [--json]]]
 *
 * With no arguments a built-in demonstration trace is replayed under
 * HawkEye. Policies: linux4k linux2m freebsd ingens hawkeye
 * hawkeye-pmu. Output goes to stdout after the summary (redirect it
 * for plotting); --json emits the same "metrics" object the
 * hawksim_bench reports use, so one set of tooling reads both.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/runner.hh"
#include "hawksim.hh"
#include "workload/trace.hh"

using namespace hawksim;

namespace {

const char *kDemoTrace = R"(# demonstration trace: allocate, build,
# churn, then serve lookups from a hot subset
alloc heap 268435456
write heap 0 65536
repeat 3
free heap 0 16384
touch heap 0 16384
access heap 2000000 zipf:0.7
end
access heap 4000000 rand
)";

std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "linux4k") {
        policy::LinuxConfig c;
        c.thp = false;
        return std::make_unique<policy::LinuxThpPolicy>(c);
    }
    if (name == "linux2m")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "freebsd")
        return std::make_unique<policy::FreeBsdPolicy>();
    if (name == "ingens")
        return std::make_unique<policy::IngensPolicy>();
    core::HawkEyeConfig c;
    c.usePmu = (name == "hawkeye-pmu");
    return std::make_unique<core::HawkEyePolicy>(c);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    bool json = false;
    if (argc > 1 && std::strcmp(argv[argc - 1], "--json") == 0) {
        json = true;
        argc--;
    }
    std::string policy = argc > 2 ? argv[2] : "hawkeye";

    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(1);
    cfg.seed = 1;
    sim::System sys(cfg);
    sys.setPolicy(makePolicy(policy));

    std::unique_ptr<workload::TraceWorkload> wl;
    try {
        if (argc > 1) {
            std::ifstream f(argv[1]);
            if (!f) {
                std::fprintf(stderr, "cannot open trace '%s'\n",
                             argv[1]);
                return 1;
            }
            std::vector<workload::TraceOp> ops =
                workload::parseTrace(f, argv[1]);
            wl = std::make_unique<workload::TraceWorkload>(
                "trace", std::move(ops), sys.rng().fork());
        } else {
            std::istringstream demo(kDemoTrace);
            wl = workload::TraceWorkload::fromStream(
                "demo", demo, sys.rng().fork());
        }
    } catch (const workload::TraceError &e) {
        std::fprintf(stderr, "malformed trace: %s\n", e.what());
        return 1;
    }
    auto &proc = sys.addProcess("trace", std::move(wl));
    sys.runUntilAllDone(sec(3600));

    std::fprintf(stderr,
                 "policy=%s runtime=%.2fs faults=%llu "
                 "fault_time=%.1fms mmu=%.2f%%\n",
                 policy.c_str(),
                 static_cast<double>(proc.runtime()) / 1e9,
                 static_cast<unsigned long long>(proc.pageFaults()),
                 static_cast<double>(proc.faultTime()) / 1e6,
                 proc.mmuOverheadPct());
    if (json)
        std::cout << harness::metricsToJson(sys.metrics()).dumpPretty()
                  << "\n";
    else
        sys.metrics().writeCsv(std::cout);
    return 0;
}
