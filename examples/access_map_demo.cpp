/**
 * @file
 * Visualize HawkEye's access_map (the paper's Figure 4): three
 * processes with different hot-region layouts, sampled by the
 * access-bit tracker, bucketed by access coverage — then drained in
 * HawkEye-G's promotion order.
 */

#include <cstdio>
#include <vector>

#include "hawksim.hh"

using namespace hawksim;

int
main()
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(2);
    cfg.seed = 4;
    sim::System sys(cfg);
    core::HawkEyeConfig hcfg;
    hcfg.faultHuge = false;     // keep regions promotable
    hcfg.samplePeriod = sec(5); // sample quickly for the demo
    auto pol = std::make_unique<core::HawkEyePolicy>(hcfg);
    core::HawkEyePolicy *hawkeye = pol.get();
    sys.setPolicy(std::move(pol));
    sys.costs().promotionsPerSec = 0.0; // only observe, don't drain

    // Three processes with distinct coverage signatures (Fig. 4's
    // A, B, C): A touches few dense regions, B several mid-coverage
    // regions, C a spread of hot and warm regions.
    struct Spec
    {
        const char *name;
        unsigned coverage;
        std::uint64_t footprint;
    };
    const std::vector<Spec> specs = {
        {"A", 500, MiB(64)},
        {"B", 300, MiB(96)},
        {"C", 420, MiB(128)},
    };
    for (const auto &s : specs) {
        workload::StreamConfig wc;
        wc.footprintBytes = s.footprint;
        wc.coveragePages = s.coverage;
        wc.accessesPerSec = 3e6;
        wc.workSeconds = 1e9;
        wc.touchesPerChunk = 8192;
        sys.addProcess(s.name,
                       std::make_unique<workload::StreamWorkload>(
                           s.name, wc, sys.rng().fork()));
    }

    sys.run(sec(12)); // two sampling periods

    for (auto &proc : sys.processes()) {
        const core::AccessMap *map =
            hawkeye->accessMap(proc->pid());
        std::printf("\naccess_map of process %s:\n",
                    proc->name().c_str());
        for (int b = core::AccessMap::kBuckets - 1; b >= 0; b--) {
            std::printf("  bucket %d (coverage %3d-%3d): %zu regions\n",
                        b, b * 512 / 10, (b + 1) * 512 / 10 - 1,
                        map->bucketSize(static_cast<unsigned>(b)));
        }
    }

    std::printf("\nHawkEye-G drains the globally highest bucket "
                "round-robin across processes (cf. Fig. 4's order "
                "A1,B1,C1,C2,...):\n  ");
    // Reproduce the drain order without promoting: pop from copies.
    std::vector<std::pair<std::string, core::AccessMap>> maps;
    for (auto &proc : sys.processes())
        maps.emplace_back(proc->name(),
                          *hawkeye->accessMap(proc->pid()));
    std::size_t rr = 0;
    for (int printed = 0; printed < 12;) {
        int top = -1;
        for (auto &[name, map] : maps)
            top = std::max(top, map.topBucket());
        if (top < 0)
            break;
        std::vector<std::size_t> tied;
        for (std::size_t i = 0; i < maps.size(); i++) {
            if (maps[i].second.topBucket() == top)
                tied.push_back(i);
        }
        auto &[name, map] = maps[tied[rr++ % tied.size()]];
        map.popTop();
        std::printf("%s ", name.c_str());
        printed++;
    }
    std::printf("...\n");
    return 0;
}
