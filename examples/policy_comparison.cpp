/**
 * @file
 * Run the same TLB-intensive workload under every policy HawkSim
 * implements and compare runtimes, fault behaviour and huge-page
 * counts — a minimal version of the paper's evaluation loop.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hawksim.hh"

using namespace hawksim;

namespace {

std::unique_ptr<policy::HugePagePolicy>
makePolicy(const std::string &name)
{
    if (name == "Linux-4KB") {
        policy::LinuxConfig c;
        c.thp = false;
        return std::make_unique<policy::LinuxThpPolicy>(c);
    }
    if (name == "Linux-2MB")
        return std::make_unique<policy::LinuxThpPolicy>();
    if (name == "FreeBSD")
        return std::make_unique<policy::FreeBsdPolicy>();
    if (name == "Ingens")
        return std::make_unique<policy::IngensPolicy>();
    if (name == "HawkEye-PMU") {
        core::HawkEyeConfig c;
        c.usePmu = true;
        return std::make_unique<core::HawkEyePolicy>(c);
    }
    return std::make_unique<core::HawkEyePolicy>();
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Policy comparison: 768MB hot-at-high-VA workload, "
                "fragmented 2GB machine\n\n");
    std::printf("%-14s %10s %10s %12s %12s %10s\n", "policy",
                "time(s)", "faults", "fault(ms)", "mmu-ovh(%)",
                "huge-pages");

    for (const std::string name :
         {"Linux-4KB", "Linux-2MB", "FreeBSD", "Ingens",
          "HawkEye-PMU", "HawkEye-G"}) {
        sim::SystemConfig cfg;
        cfg.memoryBytes = GiB(2);
        cfg.seed = 7;
        sim::System sys(cfg);
        sys.setPolicy(makePolicy(name));
        sys.fragmentMemoryMovable(1.0, 64);

        workload::StreamConfig wc;
        wc.footprintBytes = MiB(768);
        wc.hotStart = 0.7;
        wc.hotEnd = 1.0;
        wc.hotFraction = 0.9;
        wc.accessesPerSec = 5e6;
        wc.workSeconds = 30.0;
        auto &proc = sys.addProcess(
            name, std::make_unique<workload::StreamWorkload>(
                      name, wc, sys.rng().fork()));
        sys.runUntilAllDone(sec(600));

        std::printf("%-14s %10.1f %10llu %12.1f %12.2f %10llu\n",
                    name.c_str(),
                    static_cast<double>(proc.runtime()) / 1e9,
                    static_cast<unsigned long long>(
                        proc.pageFaults()),
                    static_cast<double>(proc.faultTime()) / 1e6,
                    proc.mmuOverheadPct(),
                    static_cast<unsigned long long>(
                        proc.space().pageTable().mappedHugePages()));
    }
    std::printf("\nLower time and MMU overhead are better; note how "
                "the policies differ in how fast they deliver huge "
                "pages to the hot (high-VA) region.\n");
    return 0;
}
