/**
 * @file
 * Watch HawkEye's bloat recovery in action: a key-value store
 * inserts, deletes most of its keys, cold regions get re-promoted
 * into bloat, memory pressure rises, and the recovery thread dedups
 * the zero-filled pages back to the canonical zero page.
 */

#include <cstdio>

#include "hawksim.hh"

using namespace hawksim;

int
main()
{
    setLogQuiet(true);
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(2);
    cfg.seed = 11;
    sim::System sys(cfg);
    auto pol = std::make_unique<core::HawkEyePolicy>();
    core::HawkEyePolicy *hawkeye = pol.get();
    sys.setPolicy(std::move(pol));

    workload::KvConfig kc;
    kc.arenaBytes = GiB(4);
    workload::KvPhase load;
    load.type = workload::KvPhase::Type::kInsert;
    load.count = 420'000; // ~1.7GB of the 2GB machine
    load.opsPerSec = 150'000;
    workload::KvPhase del;
    del.type = workload::KvPhase::Type::kDelete;
    del.fraction = 0.7;
    workload::KvPhase serve;
    serve.type = workload::KvPhase::Type::kServe;
    serve.durationSec = 300.0;
    serve.opsPerSec = 20'000;
    kc.phases = {load, del, serve};
    auto &proc = sys.addProcess(
        "kvstore", std::make_unique<workload::KeyValueStoreWorkload>(
                       "kvstore", kc, sys.rng().fork()));

    std::printf("%6s %10s %10s %10s %12s %12s\n", "t(s)", "rss(MB)",
                "used(%)", "huge", "demoted", "deduped");
    for (int step = 0; step < 30; step++) {
        sys.run(sec(10));
        const auto &st = hawkeye->bloatRecovery().stats();
        std::printf("%6ld %10.0f %10.1f %10llu %12llu %12llu\n",
                    sys.now() / 1'000'000'000,
                    static_cast<double>(proc.space().rssPages()) *
                        kPageSize / (1 << 20),
                    sys.phys().usedFraction() * 100.0,
                    static_cast<unsigned long long>(
                        proc.space().pageTable().mappedHugePages()),
                    static_cast<unsigned long long>(st.hugeDemoted),
                    static_cast<unsigned long long>(st.pagesDeduped));
        if (proc.finished())
            break;
    }
    std::printf(
        "\nWatch for: RSS drops at the delete; khugepaged-style "
        "promotion re-inflates cold sparse regions (bloat); once "
        "used%% crosses the high watermark, demoted/deduped counters "
        "rise and RSS falls back without the application doing "
        "anything.\n");
    return 0;
}
