/**
 * @file
 * Explore how physical-memory fragmentation shapes huge-page policy
 * behaviour: sweep the fragmentation level and watch fault-time huge
 * allocations, background promotions, compaction effort and the
 * resulting MMU overhead for Linux vs HawkEye.
 */

#include <cstdio>

#include "hawksim.hh"

using namespace hawksim;

namespace {

struct Row
{
    double mmuPct;
    std::uint64_t hugeAtEnd;
    std::uint64_t promotions;
    std::uint64_t migrated;
    double runtimeSec;
};

Row
run(const char *policy, double frag_fraction, unsigned pins)
{
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(2);
    cfg.seed = 9;
    sim::System sys(cfg);
    if (std::string(policy) == "linux")
        sys.setPolicy(std::make_unique<policy::LinuxThpPolicy>());
    else
        sys.setPolicy(std::make_unique<core::HawkEyePolicy>());
    if (frag_fraction > 0.0)
        sys.fragmentMemoryMovable(frag_fraction, pins);

    workload::StreamConfig wc;
    wc.footprintBytes = MiB(512);
    wc.accessesPerSec = 5e6;
    wc.workSeconds = 20.0;
    auto &proc = sys.addProcess(
        "app", std::make_unique<workload::StreamWorkload>(
                   "app", wc, sys.rng().fork()));
    sys.runUntilAllDone(sec(300));

    Row r;
    r.mmuPct = proc.mmuOverheadPct();
    r.hugeAtEnd = 0; // memory released at exit; use promotions
    r.promotions = sys.policy().promotions();
    r.migrated = sys.compactor().totalMigrated();
    r.runtimeSec = static_cast<double>(proc.runtime()) / 1e9;
    return r;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Fragmentation sweep: 512MB random workload on a 2GB "
                "machine\n\n");
    std::printf("%-10s %-10s %10s %10s %10s %10s\n", "policy",
                "frag", "mmu(%)", "promos", "migrated", "time(s)");
    for (const char *policy : {"linux", "hawkeye"}) {
        for (double frag : {0.0, 0.5, 1.0}) {
            const Row r = run(policy, frag, 64);
            std::printf("%-10s %-10.1f %10.2f %10llu %10llu %10.1f\n",
                        policy, frag, r.mmuPct,
                        static_cast<unsigned long long>(r.promotions),
                        static_cast<unsigned long long>(r.migrated),
                        r.runtimeSec);
        }
    }
    std::printf(
        "\nReading: with no fragmentation both policies serve huge "
        "pages at fault time (no promotions needed). As movable pins "
        "fill the regions, fault-time allocation fails and runtime "
        "hinges on background promotion + compaction throughput.\n");
    return 0;
}
