/**
 * @file
 * Quickstart: build a machine, install HawkEye, run a workload, read
 * the results.
 *
 *   $ ./quickstart
 *
 * The public API in five steps:
 *   1. configure a System (memory size, tick quantum, seed);
 *   2. install a huge-page policy (here: HawkEye-G);
 *   3. add processes with workload models;
 *   4. run;
 *   5. read per-process statistics and recorded time series.
 */

#include <cstdio>

#include "hawksim.hh"

using namespace hawksim;

int
main()
{
    // 1. A 2GB machine, deterministic seed.
    sim::SystemConfig cfg;
    cfg.memoryBytes = GiB(2);
    cfg.seed = 42;
    sim::System sys(cfg);

    // 2. The HawkEye policy (estimated-overhead variant).
    sys.setPolicy(std::make_unique<core::HawkEyePolicy>());

    // 3. A workload: 512MB footprint, random accesses, 10 seconds of
    //    useful compute.
    workload::StreamConfig wc;
    wc.footprintBytes = MiB(512);
    wc.accessesPerSec = 5e6;
    wc.workSeconds = 10.0;
    auto &proc = sys.addProcess(
        "demo", std::make_unique<workload::StreamWorkload>(
                    "demo", wc, sys.rng().fork()));

    // 4. Run until the workload completes.
    sys.runUntilAllDone(sec(120));

    // 5. Results.
    std::printf("workload finished in %.2f simulated seconds\n",
                static_cast<double>(proc.runtime()) / 1e9);
    std::printf("  page faults:       %llu (%.1f ms total)\n",
                static_cast<unsigned long long>(proc.pageFaults()),
                static_cast<double>(proc.faultTime()) / 1e6);
    std::printf("  MMU overhead:      %.2f%% of cycles\n",
                proc.mmuOverheadPct());
    std::printf("  TLB miss rate:     %.2f%%\n",
                proc.counters().missRate() * 100.0);

    auto &hawkeye =
        static_cast<core::HawkEyePolicy &>(sys.policy());
    std::printf("  promotions:        %llu\n",
                static_cast<unsigned long long>(
                    hawkeye.promotions()));
    std::printf("  pages pre-zeroed:  %llu\n",
                static_cast<unsigned long long>(
                    hawkeye.zeroDaemon().stats().pagesZeroed));
    return 0;
}
